"""Differential oracles: exhaustive optimum and cross-protocol checks."""

from __future__ import annotations

import pytest

from repro.check.oracle import (
    ORACLE_MAX_NODES,
    OracleResult,
    cross_protocol_check,
    small_instance_oracle,
)


class TestSmallInstanceOracle:
    def test_rejects_oversized_instances(self):
        with pytest.raises(ValueError, match="too large"):
            small_instance_oracle(seed=1, n_nodes=ORACLE_MAX_NODES + 1)

    def test_protocol_never_beats_the_optimum(self):
        # the defining property of an exact oracle: on full delivery the
        # distributed heuristic uses >= the exhaustive minimum
        for seed in (20260805, 20260806, 20260807):
            r = small_instance_oracle(seed=seed)
            if r.ratio is not None:
                assert r.ratio >= 1.0
                assert r.protocol_transmitters >= r.optimal_transmitters

    def test_oracle_result_is_deterministic(self):
        a = small_instance_oracle(seed=20260805)
        b = small_instance_oracle(seed=20260805)
        assert a == b

    def test_ratio_none_on_partial_delivery(self):
        r = OracleResult(
            seed=0, n_nodes=12, group_size=3,
            protocol_transmitters=4, optimal_transmitters=3,
            delivery_ratio=0.67,
        )
        assert r.ratio is None

    def test_ratio_none_without_feasible_optimum(self):
        r = OracleResult(
            seed=0, n_nodes=12, group_size=3,
            protocol_transmitters=4, optimal_transmitters=None,
            delivery_ratio=1.0,
        )
        assert r.ratio is None

    def test_ratio_computed_on_comparable_instance(self):
        r = OracleResult(
            seed=0, n_nodes=12, group_size=3,
            protocol_transmitters=4, optimal_transmitters=3,
            delivery_ratio=1.0,
        )
        assert r.ratio == pytest.approx(4 / 3)


class TestCrossProtocol:
    def test_identical_seed_comparison(self):
        out = cross_protocol_check(seed=42, protocols=("mtmrp", "odmrp"))
        assert set(out) == {"mtmrp", "odmrp"}
        for delivery, tx in out.values():
            assert 0.0 <= delivery <= 1.0
            assert tx >= 0
        # on the loss-free paper-scale grid both families deliver fully;
        # a silent regression in either protocol trips this
        assert out["mtmrp"][0] == 1.0
        assert out["odmrp"][0] == 1.0
        # and MTMRP's raison d'etre: no more data transmissions than the
        # mesh baseline on the same instance
        assert out["mtmrp"][1] <= out["odmrp"][1]
