"""Unit + mutation tests for the three self-healing invariants.

Unit layer: hand-built repair sessions and trace records against
:func:`check_repair` / :func:`scan_degraded` — one clean case and one
counter-example per violation class, no simulation.

Mutation layer: seed a real bug (a scoped-flood hop that forgets to
decrement its TTL) into a live run and require the harness to catch it —
the proof the invariants actually bite, not just compile.
"""

from __future__ import annotations

import pytest

from repro.check.invariants import check_repair, scan_degraded
from repro.protocols.odmrp import OdmrpAgent
from repro.protocols.repair import RepairPolicy, RepairSession, RouteState
from repro.sim.trace import TraceKind, TraceRecord


def rec(time, kind, node, ptype=None, detail=None) -> TraceRecord:
    return TraceRecord(time, kind, node, ptype, detail)


class FakeAgent:
    """The attribute surface ``check_repair`` reads, nothing more."""

    def __init__(self, policy, sessions):
        self.node_id = 7
        self.repair_policy = policy
        self._repair = sessions


def session(**kw) -> RepairSession:
    rs = RepairSession()
    for k, v in kw.items():
        setattr(rs, k, v)
    return rs


class TestCheckRepair:
    def test_flag_off_agents_are_skipped(self):
        a = FakeAgent(None, {(0, 1): session(route_errors=99)})
        assert check_repair([a]) == []

    def test_healthy_sessions_are_clean(self):
        pol = RepairPolicy()
        a = FakeAgent(pol, {
            (0, 1): session(),
            (0, 2): session(state=RouteState.REPAIRING, active=True,
                            route_errors=1, graft_attempt=1),
        })
        assert check_repair([a]) == []

    def test_route_error_budget_overrun_flagged(self):
        pol = RepairPolicy(route_error_budget=2)
        a = FakeAgent(pol, {(0, 1): session(route_errors=3)})
        assert [f.invariant for f in check_repair([a])] == ["no-repair-storm"]

    def test_graft_attempt_overrun_flagged(self):
        pol = RepairPolicy(max_graft_attempts=2)
        a = FakeAgent(pol, {(0, 1): session(graft_attempt=3)})
        assert [f.invariant for f in check_repair([a])] == ["no-repair-storm"]

    def test_rebuild_attempt_overrun_flagged(self):
        pol = RepairPolicy(max_rebuild_attempts=3)
        a = FakeAgent(pol, {(0, 1): session(rebuild_attempts=4)})
        assert [f.invariant for f in check_repair([a])] == ["no-repair-storm"]

    def test_active_episode_outside_repairing_flagged(self):
        pol = RepairPolicy()
        a = FakeAgent(pol, {(0, 1): session(active=True)})  # HEALTHY + active
        assert [f.invariant for f in check_repair([a])] == [
            "repair-converges-or-degrades"
        ]

    def test_premature_degradation_flagged(self):
        # DEGRADED without exhausting either escalation path is giving up
        pol = RepairPolicy(route_error_budget=2, max_rebuild_attempts=3)
        a = FakeAgent(pol, {(0, 1): session(state=RouteState.DEGRADED,
                                            route_errors=0, rebuild_attempts=0)})
        assert [f.invariant for f in check_repair([a])] == [
            "repair-converges-or-degrades"
        ]

    def test_earned_degradation_is_clean(self):
        pol = RepairPolicy(route_error_budget=2)
        a = FakeAgent(pol, {(0, 1): session(state=RouteState.DEGRADED,
                                            route_errors=2)})
        assert check_repair([a]) == []


class TestScanDegraded:
    def test_decrementing_ttls_are_clean(self):
        records = [
            rec(0.1, TraceKind.NOTE, 1, "DegradedForward", (3, 0, 1, 0)),
            rec(0.2, TraceKind.NOTE, 2, "DegradedForward", (0, 0, 1, 0)),
        ]
        assert scan_degraded(records, 0, ttl_limit=4) == []

    def test_undecremented_ttl_flagged(self):
        records = [rec(0.1, TraceKind.NOTE, 1, "DegradedForward", (4, 0, 1, 0))]
        out = scan_degraded(records, 0, ttl_limit=4)
        assert [f.invariant for f in out] == ["degraded-ttl-bounded"]

    def test_negative_ttl_flagged(self):
        records = [rec(0.1, TraceKind.NOTE, 1, "DegradedForward", (-1, 0, 1, 0))]
        out = scan_degraded(records, 0, ttl_limit=4)
        assert [f.invariant for f in out] == ["degraded-ttl-bounded"]

    def test_start_offset_skips_already_scanned_records(self):
        records = [
            rec(0.1, TraceKind.NOTE, 1, "DegradedForward", (9, 0, 1, 0)),
            rec(0.2, TraceKind.NOTE, 2, "DegradedForward", (1, 0, 1, 0)),
        ]
        assert scan_degraded(records, 1, ttl_limit=4) == []


class TestMutationCatch:
    """Seeded-bug test: the invariant must catch a real implementation fault."""

    def _degraded_line(self):
        from tests.core.helpers import build, line_positions, run_round

        policy = RepairPolicy(degraded_ttl=3)

        def factory():
            a = OdmrpAgent()
            a.repair_policy = policy
            return a

        sim, net, agents = build(line_positions(5), 25.0, receivers=[4],
                                 agent_factory=factory)
        run_round(sim, agents)
        rs = agents[0]._repair_session((0, 1))
        agents[0]._set_route_state((0, 1), rs, RouteState.DEGRADED, "test")
        return sim, agents, policy

    def test_clean_implementation_passes(self):
        sim, agents, policy = self._degraded_line()
        agents[0].send_data(1, seq=1)
        sim.run(until=sim.now + 1.0)
        assert scan_degraded(sim.trace.records, 0, policy.degraded_ttl) == []

    def test_forgotten_ttl_decrement_is_caught(self, monkeypatch):
        from dataclasses import replace

        from repro.net.packet import ScopedFloodData, _uid_counter

        def broken_hop(self, new_src):
            # the seeded bug: a forwarded copy keeps its incoming TTL,
            # so the flood never dies out
            return replace(self, src=new_src, uid=next(_uid_counter))

        monkeypatch.setattr(ScopedFloodData, "hop", broken_hop)
        sim, agents, policy = self._degraded_line()
        agents[0].send_data(1, seq=1)
        sim.run(until=sim.now + 1.0)
        findings = scan_degraded(sim.trace.records, 0, policy.degraded_ttl)
        assert findings
        assert {f.invariant for f in findings} == {"degraded-ttl-bounded"}
