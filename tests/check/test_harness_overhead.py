"""The harness must observe, never perturb.

Two guarantees pinned here:

1. **Digest invariance** — running the default golden benchmark config
   with a fully-enabled harness produces the *identical* trace sha256 as
   the unchecked run (the harness draws no rng, emits no records,
   schedules no events).
2. **Bounded overhead** — the checked run costs only a modest constant
   factor over the unchecked run; when no harness is passed the code
   path is untouched (zero overhead by construction: ``check=None``
   short-circuits every hook).

Wall-clock ratios are noisy on shared CI machines, so the hard assert is
deliberately loose (50%); the ISSUE-level target (< 15%) is verified by
the numbers this test prints under ``pytest -s``.
"""

from __future__ import annotations

import time

import repro.trees.validate  # noqa: F401 -- warm the scipy-heavy lazy import
from repro.check import CheckHarness
from repro.experiments import SimulationConfig, run_single
from repro.net.packet import reset_uids
from repro.sim.trace import TraceRecorder, trace_digest

from tests.integration.test_golden_digest import GOLDEN

GOLDEN_KEY = ("mtmrp", "grid", 42)


def _run(check=None):
    reset_uids()
    tr = TraceRecorder()
    cfg = SimulationConfig(*GOLDEN_KEY[:2], group_size=12, seed=GOLDEN_KEY[2])
    t0 = time.perf_counter()
    run_single(cfg, trace=tr, cache=False, check=check)
    return trace_digest(tr), time.perf_counter() - t0


def test_harness_does_not_change_golden_digest():
    _run()  # untimed warm-up: caches, allocator pools, first-touch numpy
    plain_digest, plain_s = _run()
    harness = CheckHarness(mode="raise")
    checked_digest, checked_s = _run(check=harness)
    assert plain_digest == GOLDEN[GOLDEN_KEY]
    assert checked_digest == plain_digest
    # the harness actually ran: both scheduled checkpoints fired clean
    assert harness.report.checkpoints == ["route-discovery", "end-of-run"]
    assert harness.report.ok
    overhead = checked_s / plain_s - 1.0
    print(f"\nharness overhead on golden config: {overhead:+.1%} "
          f"({plain_s * 1e3:.1f} ms -> {checked_s * 1e3:.1f} ms)")
    assert overhead < 0.50, f"harness overhead {overhead:.1%} exceeds budget"


def test_collect_mode_also_digest_invariant():
    harness = CheckHarness(mode="collect")
    checked_digest, _ = _run(check=harness)
    assert checked_digest == GOLDEN[GOLDEN_KEY]
    assert harness.report.ok
