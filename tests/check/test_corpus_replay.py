"""Tier-1 regression gate: every committed corpus entry replays clean.

``tests/corpus/`` holds shrunk fuzzer finds and hand-crafted edge
scenarios (crash during discovery, Gilbert-Elliott loss with sleeping
relays, mobility under refresh, energy depletion, RouteError-driven
recovery).  Each replay must finish with zero invariant violations and,
where a digest is pinned, reproduce the exact trace.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check.fuzz import replay_corpus_entry

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(ENTRIES) >= 5, "the committed regression corpus went missing"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    report = replay_corpus_entry(path, mode="raise")
    assert report.ok
    assert report.checkpoints[0] == "route-discovery"
    assert report.checkpoints[-1] == "end-of-run"


def test_route_error_entry_exercises_recovery_checkpoint():
    path = CORPUS_DIR / "006-routeerror-recovery.json"
    report = replay_corpus_entry(path, mode="raise")
    assert "route-error" in report.checkpoints
    # the crash was recovered from: every receiver still got data
    assert report.delivered_receivers == report.n_receivers


def test_graft_entry_heals_without_flood():
    # 007 pins the self-healing happy path: the crash is absorbed by a
    # local graft, so the run replays clean AND every receiver got data
    path = CORPUS_DIR / "007-graft-success.json"
    report = replay_corpus_entry(path, mode="raise")
    assert report.scenario.repair is not None
    assert report.delivered_receivers == report.n_receivers


def test_degraded_entry_replays_clean():
    # 008 pins the escalation path: graft fails, the RouteError budget
    # exhausts, and the partitioned receiver's session earns DEGRADED —
    # which check_repair validates at the end-of-run checkpoint
    path = CORPUS_DIR / "008-degraded-fallback.json"
    report = replay_corpus_entry(path, mode="raise")
    assert report.scenario.repair is not None
    assert report.scenario.repair["route_error_budget"] == 1
    assert report.ok


def test_corpus_entries_are_well_formed():
    for path in ENTRIES:
        doc = json.loads(path.read_text())
        assert "scenario" in doc and "note" in doc, path.name
