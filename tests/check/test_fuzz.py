"""Property-based protocol fuzzing under the invariant harness.

The central property: *no reachable scenario violates any invariant*.
Hypothesis explores the scenario space (topology, receivers, loss,
faults, mobility, energy budgets); every generated scenario executes a
full simulation under a ``CheckHarness`` and must come back clean.
The suite-wide ``derandomized`` profile (tests/conftest.py) keeps the
explored examples identical across machines; falsifying examples get
shrunk and should be committed to ``tests/corpus/``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro.check.fuzz import (
    BOUNDS,
    Scenario,
    load_corpus_entry,
    random_scenario,
    replay_corpus_entry,
    run_scenario,
    save_corpus_entry,
    scenario_strategy,
)
from repro.experiments.config import SimulationConfig


@settings(max_examples=25)
@given(scenario_strategy())
def test_no_scenario_violates_invariants(scenario):
    report = run_scenario(scenario, mode="collect")
    assert report.ok, (
        f"invariant violations in fuzzed scenario {scenario.describe()}:\n"
        + "\n".join(str(v).splitlines()[0] for v in report.violations)
        + f"\nrepro: Scenario.from_dict({scenario.to_dict()!r})"
    )
    # both scheduled checkpoints ran (route-error ones may add more)
    assert report.checkpoints[0] == "route-discovery"
    assert report.checkpoints[-1] == "end-of-run"


@settings(max_examples=10)
@given(scenario_strategy())
def test_scenario_roundtrips_through_json(scenario):
    wire = json.loads(json.dumps(scenario.to_dict()))
    assert Scenario.from_dict(wire) == scenario


def test_random_scenario_generator_stays_in_bounds():
    rng = np.random.default_rng(7)
    for _ in range(50):
        sc = random_scenario(rng)
        assert isinstance(sc.config, SimulationConfig)
        assert sc.config.protocol in BOUNDS["protocols"]
        assert 1 <= sc.config.group_size <= BOUNDS["group_max"]
        assert BOUNDS["n_packets"][0] <= sc.n_packets <= BOUNDS["n_packets"][1]
        for ev in sc.faults:
            assert set(ev) == {"time", "node", "kind"}
            assert 0 <= ev["node"] < sc.config.n_nodes


def test_run_scenario_is_deterministic():
    rng = np.random.default_rng(3)
    sc = random_scenario(rng)
    a = run_scenario(sc, mode="collect")
    b = run_scenario(sc, mode="collect")
    assert a.trace_sha256 == b.trace_sha256
    assert a.checkpoints == b.checkpoints
    assert a.delivered_receivers == b.delivered_receivers


class TestSessionAxis:
    """The multi-session dimension of the scenario space."""

    def test_generators_draw_multi_session_scenarios(self):
        rng = np.random.default_rng(7)
        multi = [
            sc for sc in (random_scenario(rng) for _ in range(60))
            if sc.config.sessions is not None
        ]
        assert multi, "the session axis never fires at p=0.3 over 60 draws"
        for sc in multi:
            specs = sc.config.sessions
            assert 2 <= len(specs) <= BOUNDS["max_sessions"]
            # first session is always the config's own flow
            assert specs[0].flow == (sc.config.source, sc.config.group)
            assert specs[0].group_size == sc.config.group_size
            for spec in specs:
                assert 0 <= spec.source < sc.config.n_nodes
                assert (
                    BOUNDS["session_packets"][0]
                    <= spec.n_packets
                    <= BOUNDS["session_packets"][1]
                )

    def test_multi_session_scenario_roundtrips(self):
        rng = np.random.default_rng(7)
        sc = next(
            s for s in (random_scenario(rng) for _ in range(60))
            if s.config.sessions is not None
        )
        wire = json.loads(json.dumps(sc.to_dict()))
        again = Scenario.from_dict(wire)
        assert again == sc
        assert again.config.sessions == sc.config.sessions

    def test_multi_session_scenarios_hold_invariants(self):
        """Three derandomized multi-session runs under the harness."""
        rng = np.random.default_rng(7)
        multi = [
            sc for sc in (random_scenario(rng) for _ in range(60))
            if sc.config.sessions is not None
        ][:3]
        assert len(multi) == 3
        for sc in multi:
            report = run_scenario(sc, mode="collect")
            assert report.ok, (
                f"violations in {sc.describe()}:\n"
                + "\n".join(str(v).splitlines()[0] for v in report.violations)
            )
            assert report.checkpoints[0] == "route-discovery"
            assert report.checkpoints[-1] == "end-of-run"
            assert report.n_receivers == sum(
                spec.n_receivers() for spec in sc.config.sessions
            )

    def test_multi_session_replay_is_deterministic(self):
        rng = np.random.default_rng(11)
        sc = next(
            s for s in (random_scenario(rng) for _ in range(60))
            if s.config.sessions is not None
        )
        a = run_scenario(sc, mode="collect")
        b = run_scenario(sc, mode="collect")
        assert a.trace_sha256 == b.trace_sha256
        assert a.delivered_receivers == b.delivered_receivers


class TestCorpusIO:
    def _scenario(self):
        return Scenario(
            config=SimulationConfig(
                protocol="mtmrp", topology="grid", grid_nx=3, grid_ny=3,
                side=60.0, group_size=2, seed=77, mac="ideal",
            ),
            faults=({"time": 0.5, "node": 4, "kind": "crash"},),
            n_packets=1,
        )

    def test_save_load_roundtrip(self, tmp_path):
        sc = self._scenario()
        path = tmp_path / "entry.json"
        save_corpus_entry(sc, path, note="unit")
        loaded, payload = load_corpus_entry(path)
        assert loaded == sc
        assert payload["note"] == "unit"

    def test_replay_checks_pinned_digest(self, tmp_path):
        sc = self._scenario()
        path = tmp_path / "entry.json"
        report = run_scenario(sc, mode="collect")
        assert report.ok
        save_corpus_entry(sc, path, trace_sha256=report.trace_sha256)
        replayed = replay_corpus_entry(path, mode="raise")  # must not raise
        assert replayed.trace_sha256 == report.trace_sha256

    def test_replay_names_file_on_digest_mismatch(self, tmp_path):
        sc = self._scenario()
        path = tmp_path / "entry.json"
        save_corpus_entry(sc, path, trace_sha256="0" * 64)
        with pytest.raises(AssertionError, match="entry.json"):
            replay_corpus_entry(path, mode="raise")
