"""End-to-end campaign service tests.

The submit→result round trip is pinned against ``run_single`` digests,
dedupe and coalescing are observed through the service counters (and
their ``obs`` registry mirror), and the worker-kill fault injection
proves the zero-lost-replicates recovery contract: a SIGKILLed pool
worker costs a pool restart and some re-queued replicates, never a
result — and the recovered campaign is byte-identical to an
uninterrupted one.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading

import pytest

from repro.experiments.runner import (
    pool_worker_pids,
    run_many,
    run_single,
    shutdown_pool,
)
from repro.obs.registry import CounterRegistry
from repro.service import (
    STATS,
    CampaignScheduler,
    CampaignService,
    ResultStore,
    SpecError,
)
from repro.service.spec import CampaignSpec, result_record

FAST = {"protocol": "mtmrp", "topology": "grid", "group_size": 10, "mac": "ideal"}


def payload(replicates=3, batch_seed=901, **overrides):
    return {
        "config": {**FAST, **overrides},
        "replicates": replicates,
        "batch_seed": batch_seed,
    }


def make_service(tmp_path, **sched_kwargs) -> CampaignService:
    return CampaignService(
        store=ResultStore(tmp_path / "store"),
        scheduler=CampaignScheduler(**sched_kwargs),
    )


async def collect_events(service, spec_payload):
    return [ev async for ev in service.submit(spec_payload)]


class GatedScheduler(CampaignScheduler):
    """Execution blocks until the gate opens — pins in-flight windows."""

    def __init__(self, gate: threading.Event, **kwargs) -> None:
        super().__init__(**kwargs)
        self.gate = gate

    def execute(self, cfgs, store=None, on_result=None):
        assert self.gate.wait(timeout=60), "test gate never opened"
        return super().execute(cfgs, store=store, on_result=on_result)


class TestRoundTrip:
    def test_submit_stream_matches_run_single_digests(self, tmp_path):
        service = make_service(tmp_path)
        p = payload()
        events = asyncio.run(collect_events(service, p))

        assert [ev["event"] for ev in events] == (
            ["accepted"] + ["progress"] * 3 + ["done"]
        )
        spec = CampaignSpec.from_payload(p)
        assert events[0]["spec_key"] == spec.key()
        assert events[0]["replicates"] == 3
        assert events[0]["cached"] is False and events[0]["coalesced"] is False

        # every progress event names its replicate by identity
        for ev in events[1:-1]:
            assert ev["total"] == 3 and ev["error"] is None
            assert ev["seed"] == spec.configs()[ev["index"]].seed

        # the service's results are exactly the run_single ground truth
        reference = [result_record(run_single(c)) for c in spec.configs()]
        assert events[-1]["results"] == reference
        assert events[-1]["errors"] == []

    def test_single_replicate_runs_the_config_seed(self, tmp_path):
        service = make_service(tmp_path)
        done = asyncio.run(service.run_to_completion(payload(replicates=1, seed=5)))
        assert done["event"] == "done"
        assert [r["seed"] for r in done["results"]] == [5]

    def test_malformed_specs_are_rejected(self, tmp_path):
        service = make_service(tmp_path)
        for bad in (
            "not a dict",
            {"config": FAST, "replicas": 3},          # unknown spec field
            {"config": {**FAST, "warp": 9}},          # unknown config field
            {"config": {**FAST, "group_size": -1}},   # invalid value
            {"config": FAST, "replicates": 0},
        ):
            with pytest.raises(SpecError):
                asyncio.run(service.run_to_completion(bad))
        assert STATS.get("spec_errors") == 5
        assert STATS.get("requests") == 0


class TestDedupeAndCoalescing:
    def test_resubmitted_spec_served_from_store(self, tmp_path):
        service = make_service(tmp_path)
        p = payload()

        async def twice():
            first = [ev async for ev in service.submit(p)]
            second = [ev async for ev in service.submit(p)]
            return first, second

        first, second = asyncio.run(twice())
        assert [ev["event"] for ev in second] == ["accepted", "done"]
        assert second[0]["cached"] is True and second[-1]["cached"] is True
        assert second[-1]["results"] == first[-1]["results"]
        assert STATS.get("executions") == 1
        assert STATS.get("cache_hits") == 1

        # the obs registry mirrors the service counters process-wide
        reg = CounterRegistry().refresh()
        assert reg.counters["service_cache_hits"] == 1
        assert reg.counters["service_requests"] == 2

    def test_concurrent_identical_specs_share_one_execution(self, tmp_path):
        gate = threading.Event()
        service = CampaignService(
            store=ResultStore(tmp_path / "store"),
            scheduler=GatedScheduler(gate),
        )
        p = payload()

        async def main():
            t1 = asyncio.create_task(collect_events(service, p))
            while not service._inflight:
                await asyncio.sleep(0.01)
            t2 = asyncio.create_task(collect_events(service, p))
            while STATS.get("coalesced") < 1:
                await asyncio.sleep(0.01)
            gate.set()
            return await asyncio.wait_for(asyncio.gather(t1, t2), timeout=120)

        first, second = asyncio.run(main())
        assert second[0]["coalesced"] is True
        assert first[-1]["results"] == second[-1]["results"]
        assert STATS.get("executions") == 1
        assert STATS.get("coalesced") == 1
        assert STATS.get("cache_hits") == 0


class TestWorkerKillRecovery:
    def test_killed_worker_loses_no_replicates(self, tmp_path):
        p = payload(replicates=10, batch_seed=77)
        spec = CampaignSpec.from_payload(p)
        reference = [result_record(r) for r in run_many(spec.configs())]

        killed = []
        lock = threading.Lock()

        def kill_one(done_count: int) -> None:
            with lock:
                if killed or done_count < 2:
                    return
                pids = pool_worker_pids()
                if pids:
                    killed.append(pids[0])
                    os.kill(pids[0], signal.SIGKILL)

        service = CampaignService(
            store=ResultStore(tmp_path / "store"),
            scheduler=CampaignScheduler(workers=2, chunk_size=1, kill_hook=kill_one),
        )
        try:
            done = asyncio.run(
                asyncio.wait_for(service.run_to_completion(p), timeout=300)
            )
        finally:
            shutdown_pool()

        assert killed, "fault injection never fired"
        assert done["event"] == "done" and done["errors"] == []
        # zero lost replicates, byte-identical to the uninterrupted run
        assert len(done["results"]) == 10
        assert json.dumps(done["results"], sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        assert STATS.get("worker_restarts") >= 1
        assert STATS.get("replicates_requeued") >= 1
        # checkpointed replicates were replayed, not recomputed: total
        # executed plus store replays covers the campaign exactly once
        assert STATS.get("replicates_run") + STATS.get("replicate_cache_hits") >= 10
        reg = CounterRegistry().refresh()
        assert reg.counters["service_worker_restarts"] >= 1
