"""Shared fixtures for the campaign-service suite."""

from __future__ import annotations

import pytest

from repro.service import STATS


@pytest.fixture(autouse=True)
def _reset_service_stats():
    """Service counters are process-global; start every test from zero."""
    STATS.reset()
    yield
