"""Result-store tests: LRU eviction, cache-version invalidation,
concurrent readers, and the storeable gate."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_single
from repro.service import ResultStore

FAST = dict(topology="grid", group_size=10, mac="ideal")


def cfg_for(seed: int) -> SimulationConfig:
    return SimulationConfig(protocol="mtmrp", seed=seed, **FAST)


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        cfg = cfg_for(1)
        res = run_single(cfg)
        assert store.put(cfg, res) is True
        assert store.get(cfg) == res
        assert store.path_for(cfg).exists()
        assert len(store) == 1
        assert store.stats() == {
            "entries": 1, "hits": 1, "misses": 0, "stores": 1, "evictions": 0,
        }

    def test_miss_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(cfg_for(1)) is None
        assert store.stats()["misses"] == 1

    def test_non_flat_results_are_not_storeable(self, tmp_path):
        store = ResultStore(tmp_path)
        cfg = cfg_for(2)
        res = run_single(cfg, keep_positions=True)
        assert ResultStore.storeable(res) is False
        assert store.put(cfg, res) is False
        assert len(store) == 0

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        cfg = cfg_for(1)
        store.put(cfg, run_single(cfg))
        store.clear()
        assert len(store) == 0 and store.get(cfg) is None


class TestLru:
    def test_eviction_beyond_max_entries(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        cfgs = [cfg_for(s) for s in (1, 2, 3)]
        results = [run_single(c) for c in cfgs]
        for c, r in zip(cfgs, results):
            store.put(c, r)
        assert len(store) == 2
        assert store.stats()["evictions"] == 1
        # oldest entry evicted, newer two intact
        assert store.get(cfgs[0]) is None
        assert store.get(cfgs[1]) == results[1]
        assert store.get(cfgs[2]) == results[2]

    def test_get_refreshes_recency(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        cfgs = [cfg_for(s) for s in (1, 2, 3)]
        results = [run_single(c) for c in cfgs]
        store.put(cfgs[0], results[0])
        store.put(cfgs[1], results[1])
        assert store.get(cfgs[0]) == results[0]  # 0 is now most recent
        store.put(cfgs[2], results[2])
        assert store.get(cfgs[1]) is None        # 1 was the LRU victim
        assert store.get(cfgs[0]) == results[0]

    def test_recency_survives_reopen(self, tmp_path):
        store = ResultStore(tmp_path)
        cfgs = [cfg_for(s) for s in (1, 2)]
        for c in cfgs:
            store.put(c, run_single(c))
        reopened = ResultStore(tmp_path, max_entries=2)
        assert reopened.stats()["entries"] == 2
        for c in cfgs:
            assert reopened.get(c) is not None

    def test_rejects_zero_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_entries=0)


class TestCacheVersionInvalidation:
    def test_stale_version_entries_become_unreachable(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        cfg = cfg_for(4)
        res = run_single(cfg)
        store.put(cfg, res)
        assert store.get(cfg) == res

        # a version bump re-keys the content hash: the old entry is never
        # served for a new-semantics spec (it recomputes instead)
        monkeypatch.setattr(runner_mod, "CACHE_VERSION", runner_mod.CACHE_VERSION + 1)
        assert store.get(cfg) is None
        assert store.path_for(cfg).exists() is False  # new key, no file

        # rolling back restores addressability of the old entry
        monkeypatch.undo()
        assert store.get(cfg) == res


class TestConcurrency:
    def test_concurrent_readers_see_consistent_results(self, tmp_path):
        store = ResultStore(tmp_path)
        cfg = cfg_for(5)
        res = run_single(cfg)
        store.put(cfg, res)
        with ThreadPoolExecutor(max_workers=8) as pool:
            out = list(pool.map(lambda _: store.get(cfg), range(64)))
        assert all(r == res for r in out)
        assert store.stats()["hits"] == 64

    def test_reader_during_rewrites_never_sees_torn_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        cfg = cfg_for(6)
        res = run_single(cfg)
        store.put(cfg, res)

        def rewrite():
            for _ in range(50):
                store.put(cfg, res)

        def read():
            seen = []
            for _ in range(200):
                got = store.get(cfg)
                if got is not None:
                    seen.append(got)
            return seen

        with ThreadPoolExecutor(max_workers=4) as pool:
            w = pool.submit(rewrite)
            readers = [pool.submit(read) for _ in range(3)]
            w.result()
            for f in readers:
                # atomic write-then-rename: every observed value is whole
                assert all(g == res for g in f.result())
