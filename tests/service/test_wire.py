"""Wire-protocol tests: JSON-lines over TCP and unix sockets.

Malformed input must produce one error event and leave the connection
usable — the service front door cannot be wedged by a bad client.
"""

from __future__ import annotations

import asyncio
import json

from repro.experiments.runner import run_single
from repro.service import (
    CampaignScheduler,
    CampaignService,
    ResultStore,
    ServiceClient,
    start_server,
)
from repro.service.spec import CampaignSpec, result_record

FAST = {"protocol": "mtmrp", "topology": "grid", "group_size": 10, "mac": "ideal"}


def payload(**overrides):
    return {"config": {**FAST, "seed": 3, **overrides}, "replicates": 1}


def make_service(tmp_path) -> CampaignService:
    return CampaignService(
        store=ResultStore(tmp_path / "store"), scheduler=CampaignScheduler()
    )


def port_of(server) -> int:
    return server.sockets[0].getsockname()[1]


class TestTcp:
    def test_ping_stats_and_submit_round_trip(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            async with await start_server(service) as server:
                client = await ServiceClient.connect(port=port_of(server))
                try:
                    assert (await client.ping()) == {"event": "pong"}

                    events = [ev async for ev in client.submit(payload())]
                    assert [ev["event"] for ev in events] == [
                        "accepted", "progress", "done",
                    ]
                    spec = CampaignSpec.from_payload(payload())
                    assert events[-1]["results"] == [
                        result_record(run_single(spec.configs()[0]))
                    ]

                    stats = await client.stats()
                    assert stats["event"] == "stats"
                    assert stats["service"]["requests"] == 1
                    assert stats["store"]["stores"] == 1
                    assert stats["inflight"] == 0
                finally:
                    await client.close()

        asyncio.run(main())

    def test_malformed_lines_leave_the_connection_usable(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            async with await start_server(service) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port_of(server)
                )
                try:
                    async def roundtrip(raw: bytes):
                        writer.write(raw)
                        await writer.drain()
                        return json.loads(await reader.readline())

                    ev = await roundtrip(b"this is not json\n")
                    assert ev["event"] == "error" and "malformed" in ev["message"]

                    ev = await roundtrip(b'{"op": "warp"}\n')
                    assert ev["event"] == "error" and "unknown op" in ev["message"]

                    ev = await roundtrip(
                        json.dumps(
                            {"op": "submit", "spec": {"config": {"warp": 9}}}
                        ).encode() + b"\n"
                    )
                    assert ev["event"] == "error"
                    assert "unknown config fields" in ev["message"]

                    # after three bad requests the connection still serves
                    ev = await roundtrip(b'{"op": "ping"}\n')
                    assert ev == {"event": "pong"}
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(main())


class TestUnixSocket:
    def test_ping_over_unix_socket(self, tmp_path):
        service = make_service(tmp_path)
        sock = str(tmp_path / "svc.sock")

        async def main():
            async with await start_server(service, unix_path=sock):
                client = await ServiceClient.connect(unix_path=sock)
                try:
                    assert (await client.ping()) == {"event": "pong"}
                finally:
                    await client.close()

        asyncio.run(main())
