"""Concurrency soak: N async clients, Hypothesis-generated specs,
duplicate submissions, cancellation mid-stream, store consistency.

Spec payloads are derived from :func:`repro.check.fuzz.scenario_strategy`
so the service sees the same structured parameter space the checked-run
fuzzer explores (protocol × topology × MAC × loss model × sessions),
not just the happy-path grid config.
"""

from __future__ import annotations

import asyncio
import dataclasses
import tempfile
import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.fuzz import scenario_strategy
from repro.experiments.runner import run_many
from repro.service import (
    STATS,
    CampaignScheduler,
    CampaignService,
    ResultStore,
    ServiceClient,
    start_server,
)
from repro.service.spec import CampaignSpec, result_record

FAST = {"protocol": "mtmrp", "topology": "grid", "group_size": 10, "mac": "ideal"}


def scenario_payload(scenario) -> dict:
    """One service spec from a fuzzer scenario's config."""
    return {"config": dataclasses.asdict(scenario.config), "replicates": 1}


class GatedScheduler(CampaignScheduler):
    def __init__(self, gate: threading.Event, **kwargs) -> None:
        super().__init__(**kwargs)
        self.gate = gate

    def execute(self, cfgs, store=None, on_result=None):
        assert self.gate.wait(timeout=60), "test gate never opened"
        return super().execute(cfgs, store=store, on_result=on_result)


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    scenarios=st.lists(
        scenario_strategy(),
        min_size=2,
        max_size=4,
        unique_by=lambda s: s.config.seed,
    )
)
def test_concurrent_fuzzed_clients_agree_with_serial_truth(scenarios):
    """Every concurrent wire client gets exactly the serial ground truth,
    duplicates dedupe onto shared executions, and the store holds only
    consistent entries."""
    STATS.reset()
    payloads = [scenario_payload(s) for s in scenarios]
    payloads = payloads + payloads[: len(payloads) // 2 + 1]  # duplicates

    refs = {}
    for p in payloads:
        spec = CampaignSpec.from_payload(p)
        if spec.key() not in refs:
            refs[spec.key()] = [result_record(r) for r in run_many(spec.configs())]

    async def main():
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            service = CampaignService(
                store=ResultStore(tmp), scheduler=CampaignScheduler()
            )
            async with await start_server(service) as server:
                port = server.sockets[0].getsockname()[1]

                async def one(p):
                    client = await ServiceClient.connect(port=port)
                    try:
                        return await client.run_to_completion(p)
                    finally:
                        await client.close()

                return await asyncio.wait_for(
                    asyncio.gather(*(one(p) for p in payloads)), timeout=300
                )

    dones = asyncio.run(main())
    assert len(dones) == len(payloads)
    for p, done in zip(payloads, dones):
        key = CampaignSpec.from_payload(p).key()
        assert done["event"] == "done", done
        assert done.get("errors") == []
        assert done["results"] == refs[key]
    # duplicates never re-executed: one execution per distinct key at most
    assert STATS.get("executions") <= len(refs)
    assert STATS.get("requests") == len(payloads)


def test_cancellation_mid_stream_keeps_the_job_alive():
    """A client hanging up after ``accepted`` detaches its subscriber
    only; a coalesced client still receives full results."""
    STATS.reset()

    async def main():
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            gate = threading.Event()
            service = CampaignService(
                store=ResultStore(tmp), scheduler=GatedScheduler(gate)
            )
            p = {"config": FAST, "replicates": 2, "batch_seed": 31}

            agen = service.submit(p)
            first = await agen.__anext__()
            assert first["event"] == "accepted"
            follower = asyncio.create_task(service.run_to_completion(p))
            while STATS.get("coalesced") < 1:
                await asyncio.sleep(0.01)
            await agen.aclose()  # cancel mid-stream
            gate.set()
            done = await asyncio.wait_for(follower, timeout=120)
            assert done["event"] == "done" and len(done["results"]) == 2
            assert STATS.get("executions") == 1

    asyncio.run(main())


def test_many_clients_few_specs_no_deadlock():
    """Eight concurrent wire clients over two distinct specs: the serial
    in-process scheduler (with its process-global execution lock) must
    drain the whole queue without deadlock, and every duplicate must ride
    a shared execution or the store."""
    STATS.reset()
    distinct = [
        {"config": {**FAST, "seed": 11}, "replicates": 2, "batch_seed": 41},
        {"config": {**FAST, "protocol": "odmrp", "seed": 12}, "replicates": 1},
    ]
    payloads = [distinct[i % 2] for i in range(8)]

    async def main():
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            service = CampaignService(
                store=ResultStore(tmp), scheduler=CampaignScheduler()
            )
            async with await start_server(service) as server:
                port = server.sockets[0].getsockname()[1]

                async def one(p):
                    client = await ServiceClient.connect(port=port)
                    try:
                        return await client.run_to_completion(p)
                    finally:
                        await client.close()

                return await asyncio.wait_for(
                    asyncio.gather(*(one(p) for p in payloads)), timeout=120
                )

    dones = asyncio.run(main())
    assert [d["event"] for d in dones] == ["done"] * 8
    by_key = {}
    for p, d in zip(payloads, dones):
        key = CampaignSpec.from_payload(p).key()
        by_key.setdefault(key, []).append(d["results"])
    for results in by_key.values():
        assert all(r == results[0] for r in results)
    assert STATS.get("executions") <= 2
    assert STATS.get("cache_hits") + STATS.get("coalesced") >= 6
