"""Integration tests for the shadowing ablation substrate."""

import numpy as np

from repro.experiments import SimulationConfig, run_single


def test_shadowing_changes_topology_not_draws():
    """Shadowed runs keep the same receiver draw (variance isolation)."""
    base = SimulationConfig(protocol="mtmrp", topology="grid", group_size=15, seed=8)
    clean = run_single(base)
    faded = run_single(base.with_(shadowing_sigma_db=4.0))
    assert clean.receivers == faded.receivers


def test_shadowing_deterministic_per_seed():
    cfg = SimulationConfig(protocol="mtmrp", topology="grid", group_size=15,
                           seed=9, shadowing_sigma_db=4.0)
    assert run_single(cfg) == run_single(cfg)


def test_channel_links_symmetric_under_fading():
    """The symmetrised gain matrix keeps links bidirectional."""
    from repro.mac.ideal import IdealMac
    from repro.net.network import Network
    from repro.net.topology import grid_topology
    from repro.phy.propagation import LogDistance
    from repro.sim.kernel import Simulator

    sim = Simulator(seed=4)
    prop = LogDistance(
        reference_distance=1.0,
        reference_power_factor=(1.5 * 1.5) ** 2,
        path_loss_exponent=4.0,
        shadowing_sigma_db=6.0,
        rng=sim.rng.stream("shadowing"),
    )
    net = Network(sim, grid_topology(), comm_range=40.0,
                  mac_factory=IdealMac, propagation=prop)
    ch = net.channel
    assert np.allclose(ch.rx_power, ch.rx_power.T)
    for i in range(len(net)):
        for j in ch.neighbors(i):
            assert i in ch.neighbors(int(j))


def test_heavy_fading_prunes_some_nominal_links():
    from repro.mac.ideal import IdealMac
    from repro.net.network import Network
    from repro.net.topology import grid_topology
    from repro.phy.propagation import LogDistance
    from repro.sim.kernel import Simulator

    def link_count(sigma):
        sim = Simulator(seed=4)
        prop = None
        if sigma:
            prop = LogDistance(
                reference_distance=1.0,
                reference_power_factor=(1.5 * 1.5) ** 2,
                path_loss_exponent=4.0,
                shadowing_sigma_db=sigma,
                rng=sim.rng.stream("shadowing"),
            )
        net = Network(sim, grid_topology(), comm_range=40.0,
                      mac_factory=IdealMac, propagation=prop)
        return sum(len(net.neighbors(i)) for i in range(len(net)))

    clean = link_count(0)
    faded = link_count(6.0)
    assert faded != clean  # fading reshapes the neighborhood
