"""Cross-protocol integration: GMR under CSMA, MAODV with refresh,
multi-group and multi-source coexistence."""

import numpy as np

from repro.core.mtmrp import MtmrpAgent
from repro.mac.csma import CsmaMac
from repro.mac.ideal import IdealMac
from repro.net.network import Network
from repro.net.topology import grid_topology
from repro.protocols import GmrAgent, MaodvAgent
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind


def test_gmr_under_csma_mostly_delivers():
    sim = Simulator(seed=12)
    net = Network(sim, grid_topology(), comm_range=40.0, mac_factory=CsmaMac)
    rng = np.random.default_rng(12)
    dests = rng.choice(np.arange(1, 100), size=12, replace=False).tolist()
    net.bootstrap_neighbor_tables(with_positions=True)
    agents = net.install(lambda node: GmrAgent())
    net.start()
    agents[0].multicast(1, {d: net.node(d).position for d in dests})
    sim.run(until=2.0)
    delivered = sim.trace.nodes_with(TraceKind.DELIVER)
    assert len(delivered & set(dests)) >= 10  # CSMA may cost a couple


def test_maodv_rebuilds_via_refresh():
    """MAODV's brittleness is healed by the next GroupHello round."""
    sim = Simulator(seed=3)
    net = Network(sim, grid_topology(), comm_range=40.0,
                  mac_factory=IdealMac, perfect_channel=True)
    rng = np.random.default_rng(5)
    receivers = rng.choice(np.arange(1, 100), size=8, replace=False).tolist()
    net.set_group_members(1, receivers)
    net.bootstrap_neighbor_tables()
    agents = net.install(lambda node: MaodvAgent())
    net.start()
    agents[0].request_route(1)
    sim.run(until=2.0)
    agents[0].send_data(1, 0)
    sim.run(until=3.0)
    serving = [a.last_data_from[(0, 1)] for a in agents
               if a.node_id in receivers and (0, 1) in a.last_data_from]
    victim = max(set(serving) - {0}, key=serving.count)
    net.node(victim).fail()
    # broken round
    agents[0].send_data(1, 1)
    sim.run(until=sim.now + 1.0)
    got1 = {r.node for r in sim.trace.filter(kind=TraceKind.DELIVER)
            if r.detail == (0, 1, 1)}
    assert len(got1) < len(receivers)
    # refresh rebuilds around the corpse
    agents[0].request_route(1)
    sim.run(until=sim.now + 2.0)
    agents[0].send_data(1, 2)
    sim.run(until=sim.now + 1.0)
    got2 = {r.node for r in sim.trace.filter(kind=TraceKind.DELIVER)
            if r.detail == (0, 1, 2)}
    assert got2 == set(receivers)


def test_two_groups_two_sources_coexist():
    """Independent sessions from different sources share the network."""
    sim = Simulator(seed=6)
    net = Network(sim, grid_topology(), comm_range=40.0,
                  mac_factory=IdealMac, perfect_channel=True)
    rng = np.random.default_rng(6)
    g1 = rng.choice(np.arange(1, 99), size=8, replace=False).tolist()
    g2 = rng.choice(np.arange(1, 99), size=8, replace=False).tolist()
    net.set_group_members(1, g1)
    net.set_group_members(2, g2)
    net.bootstrap_neighbor_tables()
    agents = net.install(lambda node: MtmrpAgent())
    net.start()
    agents[0].request_route(1)
    agents[99].request_route(2)
    sim.run(until=2.5)
    agents[0].send_data(1, 0)
    agents[99].send_data(2, 0)
    sim.run(until=sim.now + 1.5)
    d1 = {r.node for r in sim.trace.filter(kind=TraceKind.DELIVER)
          if r.detail == (0, 1, 0)}
    d2 = {r.node for r in sim.trace.filter(kind=TraceKind.DELIVER)
          if r.detail == (99, 2, 0)}
    assert d1 == set(g1)
    assert d2 == set(g2)


def test_node_in_both_groups_keeps_sessions_apart():
    sim = Simulator(seed=7)
    net = Network(sim, grid_topology(5, 5, 100.0), comm_range=40.0,
                  mac_factory=IdealMac, perfect_channel=True)
    net.set_group_members(1, [12])
    net.set_group_members(2, [12])
    net.bootstrap_neighbor_tables()
    agents = net.install(lambda node: MtmrpAgent())
    net.start()
    agents[0].request_route(1)
    agents[24].request_route(2)
    sim.run(until=2.0)
    st1 = agents[12].state_of(0, 1)
    st2 = agents[12].state_of(24, 2)
    assert st1 is not None and st2 is not None
    assert st1.covered and st2.covered
    assert st1.session != st2.session
