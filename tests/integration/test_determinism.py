"""Whole-run determinism and HELLO-vs-bootstrap equivalence."""

import numpy as np

from repro.experiments import SimulationConfig, run_single
from repro.core.mtmrp import MtmrpAgent
from repro.mac.csma import CsmaMac
from repro.net.network import Network
from repro.net.topology import grid_topology
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind


def test_full_run_bit_reproducible_csma():
    """Same seed -> identical trace lengths, transmitters, energy."""
    cfg = SimulationConfig(protocol="mtmrp", topology="random", group_size=15,
                           seed=77, mac="csma")
    a = run_single(cfg)
    b = run_single(cfg)
    assert a == b


def test_different_mac_streams_do_not_perturb_receivers():
    """Variance isolation: switching MACs keeps the receiver draw fixed."""
    base = SimulationConfig(protocol="odmrp", topology="grid", group_size=12, seed=5)
    ideal = run_single(base.with_(mac="ideal"))
    csma = run_single(base.with_(mac="csma"))
    assert ideal.receivers == csma.receivers


def test_hello_phase_equals_bootstrap_tree_on_ideal_medium():
    """With a loss-free medium, building neighbor tables via the real HELLO
    protocol yields the same multicast tree as the oracle bootstrap."""

    def run(hello: bool):
        sim = Simulator(seed=11)
        net = Network(sim, grid_topology(), comm_range=40.0,
                      mac_factory=CsmaMac, perfect_channel=True)
        rng = np.random.default_rng(123)
        receivers = rng.choice(np.arange(1, 100), size=12, replace=False).tolist()
        net.set_group_members(1, receivers)
        if hello:
            net.install_hello(period=0.5)
        agents = net.install(lambda node: MtmrpAgent())
        net.start()
        if hello:
            sim.run(until=1.6)  # several HELLO periods
        else:
            net.bootstrap_neighbor_tables()
        agents[0].request_route(1)
        sim.run(until=sim.now + 2.0)
        agents[0].send_data(1, 0)
        sim.run(until=sim.now + 1.0)
        delivered = sim.trace.nodes_with(TraceKind.DELIVER)
        forwarders = {
            a.node_id for a in agents
            if any(st.is_forwarder for st in a.sessions.values())
        }
        return set(receivers), delivered, forwarders

    recv_h, delivered_h, fwd_h = run(hello=True)
    recv_b, delivered_b, fwd_b = run(hello=False)
    assert recv_h == recv_b
    assert delivered_h == recv_h
    assert delivered_b == recv_b
    # trees may differ microscopically in timing, but both are full covers
    # of similar size
    assert abs(len(fwd_h) - len(fwd_b)) <= 4
