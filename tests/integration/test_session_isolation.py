"""Session isolation: marks and state never leak across sources/groups/rounds."""

import numpy as np

from repro.core.mtmrp import MtmrpAgent
from repro.core.messages import JoinReply
from repro.mac.ideal import IdealMac
from repro.net.network import Network
from repro.net.topology import grid_topology
from repro.sim.kernel import Simulator
from tests.core.helpers import build, line_positions, run_round


def test_neighbor_marks_keyed_by_full_session():
    sim, _net, agents = build(line_positions(4), 25.0, receivers=[3],
                              agent_factory=lambda: MtmrpAgent())
    run_round(sim, agents, seq=0)
    table = agents[1].node.neighbor_table
    assert table.has_forwarder((0, 1, 0))
    # a different round, group or source shares none of the marks
    assert not table.has_forwarder((0, 1, 1))
    assert not table.has_forwarder((0, 2, 0))
    assert not table.has_forwarder((5, 1, 0))


def test_join_reply_is_unicast_to_nexthop_everywhere():
    """Every JoinReply frame's link-layer dst equals its NexthopID."""
    sent = []

    class Probe(MtmrpAgent):
        def send(self, packet):
            if isinstance(packet, JoinReply):
                sent.append(packet)
            super().send(packet)

    sim = Simulator(seed=2)
    net = Network(sim, grid_topology(5, 5, 100.0), comm_range=40.0,
                  mac_factory=IdealMac, perfect_channel=True)
    rng = np.random.default_rng(2)
    receivers = rng.choice(np.arange(1, 25), size=6, replace=False).tolist()
    net.set_group_members(1, receivers)
    net.bootstrap_neighbor_tables()
    agents = net.install(lambda node: Probe())
    net.start()
    agents[0].request_route(1)
    sim.run(until=2.0)
    assert sent
    for jr in sent:
        assert jr.dst == jr.nexthop


def test_new_round_does_not_reuse_old_coverage():
    """RelayProfit in round k+1 counts receivers afresh (marks are per
    session), so a refreshed tree is built from clean state."""
    sim, _net, agents = build(line_positions(4), 25.0, receivers=[3],
                              agent_factory=lambda: MtmrpAgent())
    run_round(sim, agents, seq=0)
    rp_round0 = agents[2].state_of(0, 1).relay_profit
    run_round(sim, agents, seq=1)
    rp_round1 = agents[2].state_of(0, 1).relay_profit
    assert rp_round0 == rp_round1 == 1  # receiver 3 counted fresh each round
