"""Acceptance tests for the fault-injection subsystem (ISSUE 1).

Two properties the campaign must guarantee:

* a seeded fault run is bit-for-bit reproducible (identical trace digest
  and fault log for identical configs);
* after a mid-tree forwarder crash, MTMRP's soft-state refresh restores
  delivery above 90% of the surviving receivers within one refresh
  interval on the perfect-MAC grid.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.faults import fault_sweep, run_fault_single

REFRESH = 2.0
KW = dict(n_packets=20, rate_pps=10.0, refresh_interval=REFRESH, crash_forwarder_at=0.55)


def _cfg(**over):
    base = dict(protocol="mtmrp", topology="grid", group_size=20, mac="ideal", seed=3)
    base.update(over)
    return SimulationConfig(**base)


def test_fault_campaign_is_bit_reproducible():
    r1 = run_fault_single(_cfg(), **KW)
    r2 = run_fault_single(_cfg(), **KW)
    assert r1.trace_sha256 == r2.trace_sha256
    assert r1.fault_log == r2.fault_log
    assert r1 == r2
    # a different seed gives a genuinely different run
    other = run_fault_single(_cfg(seed=4), **KW)
    assert other.trace_sha256 != r1.trace_sha256


def test_lossy_runs_are_bit_reproducible_too():
    cfg = _cfg(loss_model="iid", loss_rate=0.1)
    r1 = run_fault_single(cfg, **KW)
    r2 = run_fault_single(cfg, **KW)
    assert r1.trace_sha256 == r2.trace_sha256
    assert r1.frames_lost == r2.frames_lost > 0


def test_mtmrp_recovers_within_one_refresh_interval():
    for seed in (3, 11, 42):
        r = run_fault_single(_cfg(seed=seed), **KW)
        assert r.crashes == 1, f"seed {seed}: expected exactly one crash"
        assert r.time_to_first_partition is None  # one dead node can't cut the grid
        assert r.pre_fault_delivery > 0.9, f"seed {seed}: tree unhealthy before crash"
        assert r.post_fault_delivery > 0.9, f"seed {seed}: delivery did not recover"
        assert r.recovery_latency is not None, f"seed {seed}: never recovered"
        assert r.recovery_latency <= REFRESH, (
            f"seed {seed}: recovery took {r.recovery_latency:.2f}s > {REFRESH}s"
        )


def test_energy_budget_produces_depletion_deaths():
    r = run_fault_single(
        _cfg(), energy_budget=0.002, n_packets=20, rate_pps=10.0, refresh_interval=REFRESH
    )
    assert r.crashes > 0
    assert all(cause == "energy" for _t, _n, _k, cause in r.fault_log)
    # depletion hits the busiest (forwarding) nodes; delivery degrades
    assert r.delivery_ratio < 1.0


def test_fault_sweep_reports_all_protocols():
    out = fault_sweep(protocols=("mtmrp", "odmrp"), runs=2, n_packets=10)
    assert set(out) == {"mtmrp", "odmrp"}
    for v in out.values():
        assert 0.0 <= v["delivery_ratio"] <= 1.0
        assert v["crashes"] >= 1.0
        assert 0.0 <= v["recovered_runs"] <= 1.0


def test_fault_sweep_percentile_keys_survive_single_replicate():
    """With one replicate the p50/p95 columns stay present — as NaN with
    a warning — instead of silently parroting the lone value."""
    import math
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        out = fault_sweep(protocols=("mtmrp",), runs=1, n_packets=10)
    v = out["mtmrp"]
    # the fixed report schema: every percentile key present
    for key in ("delivery_p50", "delivery_p95", "recovery_p50", "recovery_p95"):
        assert key in v, f"{key} dropped from the single-replicate report"
        assert math.isnan(v[key]), f"{key} should be NaN with n=1, got {v[key]}"
    messages = [str(w.message) for w in caught]
    assert any("percentile" in m for m in messages)  # aggregate() warned
    assert any("recovery_p50" in m or "recovered replicate" in m for m in messages)
    # the means are still real numbers
    assert 0.0 <= v["delivery_ratio"] <= 1.0
    assert not math.isnan(v["recovery_latency"])  # this seed recovers


def test_fault_sweep_percentiles_finite_with_replicates():
    import math

    out = fault_sweep(protocols=("mtmrp",), runs=3, n_packets=10)
    v = out["mtmrp"]
    for key in ("delivery_p50", "delivery_p95"):
        assert not math.isnan(v[key])


def test_gilbert_elliott_config_wires_through():
    cfg = _cfg(loss_model="gilbert", ge_p_good_bad=0.05, ge_p_bad_good=0.3)
    r = run_fault_single(cfg, **KW)
    assert r.frames_lost > 0
    assert r.delivery_ratio < 1.0 or r.frames_lost > 0
    with pytest.raises(ValueError):
        _cfg(loss_model="bogus")
    with pytest.raises(ValueError):
        _cfg(loss_model="iid", loss_rate=1.5)
