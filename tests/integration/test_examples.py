"""Smoke tests: the shipped examples must run end to end.

Only the fast examples run here (the Monte-Carlo ones are exercised by
the benchmark suite); each is executed in-process via runpy so coverage
and failures surface normally.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "transmissions" in out
    assert "delivery ratio" in out
    assert "S=source" in out


def test_tree_styles(capsys):
    out = _run("tree_styles.py", capsys)
    assert "shortest-path tree" in out
    assert "distributed MTMRP" in out


def test_route_recovery(capsys):
    out = _run("route_recovery.py", capsys)
    assert "rebuilt tree" in out
    # the story must end with full delivery restored
    assert out.strip().splitlines()[-1].endswith("10/10 receivers")


def test_protocol_families(capsys):
    out = _run("protocol_families.py", capsys)
    for label in ("MAODV", "ODMRP", "GMR", "MTMRP"):
        assert label in out
