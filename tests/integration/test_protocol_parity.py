"""Cross-protocol parity matrix over the regression corpus.

Every committed ``tests/corpus/*.json`` scenario config is re-run under
all five multicast protocols at the scenario's pinned seed, and the
relationships the paper's argument rests on are asserted as invariants:

* MTMRP's whole point is a *smaller forwarder set* — on identical seeds
  it must never use more forwarders (or data transmissions, or energy)
  than ODMRP, whose forwarding group it prunes;
* DODMRP sits between the two by construction: deflected joins can only
  shrink the ODMRP forwarding group, never grow it;
* the tree-building protocols deliver the full group on every corpus
  scenario (small, connected deployments — anything less is a routing
  regression, not statistical noise: each cell is a deterministic
  function of the seed);
* the stateless/mesh baselines hold their recorded per-scenario floors.

The matrix is 5 protocols x 6 scenarios = 30 deterministic runs, built
once per test session.
"""

import json
from pathlib import Path

import pytest

from repro.check.fuzz import load_corpus_entry
from repro.experiments.runner import run_single
from repro.net.packet import reset_uids

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"

PROTOCOLS = ("mtmrp", "odmrp", "dodmrp", "maodv", "gmr")

#: deterministic per-protocol delivery floors over the corpus (each cell
#: is a pure function of the pinned seed, so these are regression pins,
#: not statistical expectations)
DELIVERY_FLOORS = {
    "mtmrp": 1.0,
    "odmrp": 1.0,
    "dodmrp": 1.0,
    "maodv": 0.8,
    "gmr": 0.6,
}


def _corpus_paths():
    """Single-session corpus entries (the matrix's per-run assertions —
    ``delivered == group_size`` etc. — are about one flow; multi-session
    entries get their own parity matrix in
    ``tests/protocols/test_multisession_differential.py``)."""
    from repro.traffic.spec import active_sessions

    paths = [
        p
        for p in sorted(CORPUS_DIR.glob("*.json"))
        if active_sessions(load_corpus_entry(p)[0].config) is None
    ]
    assert len(paths) >= 6, f"expected the 6-entry corpus, found {len(paths)}"
    return paths


@pytest.fixture(scope="module")
def matrix():
    """{scenario name: {protocol: RunResult}} over the whole corpus."""
    out = {}
    for path in _corpus_paths():
        scenario, _payload = load_corpus_entry(path)
        cfg = scenario.config
        row = {}
        for proto in PROTOCOLS:
            reset_uids()
            row[proto] = run_single(cfg.with_(protocol=proto), cache=False)
        out[path.name] = row
    return out


def test_corpus_is_intact():
    """Every corpus entry still parses and names a scenario + config."""
    for path in _corpus_paths():
        payload = json.loads(path.read_text())
        assert "scenario" in payload and "config" in payload["scenario"], path.name


def test_every_cell_ran(matrix):
    assert len(matrix) >= 6
    for name, row in matrix.items():
        assert set(row) == set(PROTOCOLS), name
        for proto, r in row.items():
            assert r.protocol == proto, (name, proto)
            assert 0.0 <= r.delivery_ratio <= 1.0, (name, proto)
            assert r.delivered <= r.group_size, (name, proto)
            assert r.energy_joules > 0.0, (name, proto)


def test_mtmrp_forwarders_never_exceed_odmrp(matrix):
    """The headline claim: MTMRP prunes ODMRP's forwarding group."""
    for name, row in matrix.items():
        mt, od = row["mtmrp"], row["odmrp"]
        assert len(mt.transmitters) <= len(od.transmitters), (
            f"{name}: mtmrp used {len(mt.transmitters)} forwarders, "
            f"odmrp only {len(od.transmitters)}"
        )


def test_mtmrp_data_cost_never_exceeds_odmrp(matrix):
    for name, row in matrix.items():
        assert row["mtmrp"].data_transmissions <= row["odmrp"].data_transmissions, name
        assert row["mtmrp"].energy_joules <= row["odmrp"].energy_joules, name


def test_dodmrp_forwarders_never_exceed_odmrp(matrix):
    """Deflected joins only ever shrink the forwarding group."""
    for name, row in matrix.items():
        assert len(row["dodmrp"].transmitters) <= len(row["odmrp"].transmitters), name


@pytest.mark.parametrize("proto", PROTOCOLS)
def test_delivery_floor(matrix, proto):
    floor = DELIVERY_FLOORS[proto]
    for name, row in matrix.items():
        assert row[proto].delivery_ratio >= floor, (
            f"{name}: {proto} delivered {row[proto].delivery_ratio:.2f} "
            f"< pinned floor {floor}"
        )


def test_tree_protocols_reach_whole_group(matrix):
    """On the corpus deployments the mesh/tree builders cover everyone."""
    for name, row in matrix.items():
        for proto in ("mtmrp", "odmrp", "dodmrp"):
            r = row[proto]
            assert r.delivered == r.group_size, (name, proto)


def test_matrix_is_deterministic(matrix):
    """Replaying one cell reproduces the cached result exactly."""
    name = sorted(matrix)[0]
    scenario, _ = load_corpus_entry(CORPUS_DIR / name)
    reset_uids()
    again = run_single(scenario.config.with_(protocol="mtmrp"), cache=False)
    assert again == matrix[name]["mtmrp"]
