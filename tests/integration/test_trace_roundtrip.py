"""End-to-end trace export: a real run's trace survives the file format."""

from repro.experiments import SimulationConfig
from repro.sim.tracefile import read_trace, write_trace
from repro.sim.trace import TraceKind


def test_full_run_trace_roundtrips(tmp_path):
    """Run a real multicast round, dump its trace, reload, and recompute
    the headline metric from the file."""
    from repro.experiments.runner import run_single
    from repro.mac.ideal import IdealMac
    from repro.net.network import Network
    from repro.net.topology import grid_topology
    from repro.sim.kernel import Simulator
    from repro.core.mtmrp import MtmrpAgent
    import numpy as np

    sim = Simulator(seed=13)
    net = Network(sim, grid_topology(), comm_range=40.0,
                  mac_factory=IdealMac, perfect_channel=True)
    rng = np.random.default_rng(13)
    receivers = rng.choice(np.arange(1, 100), size=10, replace=False).tolist()
    net.set_group_members(1, receivers)
    net.bootstrap_neighbor_tables()
    agents = net.install(lambda node: MtmrpAgent())
    net.start()
    agents[0].request_route(1)
    sim.run(until=2.0)
    agents[0].send_data(1, 0)
    sim.run(until=3.0)

    p = tmp_path / "run.trace"
    n = write_trace(sim.trace, p)
    assert n == len(sim.trace)
    back = read_trace(p)
    # the paper's metric recomputed from the file matches the live trace
    assert back.count(TraceKind.TX, "DataPacket") == sim.trace.count(
        TraceKind.TX, "DataPacket"
    )
    assert back.nodes_with(TraceKind.DELIVER) == sim.trace.nodes_with(TraceKind.DELIVER)
    assert back.records == sim.trace.records
