"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro.experiments import SimulationConfig, monte_carlo, run_many, run_single

PROTOS = ("mtmrp", "mtmrp_nophs", "dodmrp", "odmrp")


class TestFullDeliveryIdeal:
    """On a perfect medium every protocol must reach every receiver."""

    @pytest.mark.parametrize("proto", PROTOS)
    @pytest.mark.parametrize("topo,gs", [("grid", 20), ("random", 15)])
    def test_delivery(self, proto, topo, gs):
        for seed in (1, 2, 3):
            r = run_single(SimulationConfig(protocol=proto, topology=topo,
                                            group_size=gs, seed=seed, mac="ideal"))
            assert r.delivery_ratio == 1.0, (proto, topo, seed)
            assert r.data_transmissions == r.tree_transmissions


class TestCsmaRealism:
    @pytest.mark.parametrize("proto", PROTOS)
    def test_high_delivery_under_csma(self, proto):
        cfg = SimulationConfig(protocol=proto, topology="grid", group_size=20, mac="csma")
        results = run_many(monte_carlo(cfg, 8, batch_seed=99))
        ratios = [r.delivery_ratio for r in results]
        assert np.mean(ratios) >= 0.95, proto

    def test_collisions_happen_under_csma(self):
        cfg = SimulationConfig(protocol="odmrp", topology="random", group_size=15, mac="csma")
        r = run_single(cfg.with_(seed=3))
        assert r.collisions > 0


class TestPaperOrderings:
    """The Figs. 5-6 headline shape at one sweep point (statistical)."""

    def _mean_tx(self, proto, topo, gs, runs=12):
        cfg = SimulationConfig(protocol=proto, topology=topo, group_size=gs)
        results = run_many(monte_carlo(cfg, runs, batch_seed=4242))
        return float(np.mean([r.data_transmissions for r in results]))

    def test_grid_ordering_at_20_receivers(self):
        mt = self._mean_tx("mtmrp", "grid", 20)
        nophs = self._mean_tx("mtmrp_nophs", "grid", 20)
        dod = self._mean_tx("dodmrp", "grid", 20)
        od = self._mean_tx("odmrp", "grid", 20)
        assert mt < od
        assert mt <= nophs + 0.5
        assert mt < dod

    def test_everything_beats_flooding(self):
        flood = self._mean_tx("flooding", "grid", 20, runs=4)
        for proto in PROTOS:
            assert self._mean_tx(proto, "grid", 20, runs=4) < flood / 2


class TestEnergyConsistency:
    def test_energy_ranks_like_transmissions(self):
        """Sec. III's premise: fewer transmissions => less energy, protocol
        stacks being equal (MTMRP vs its own no-PHS arm)."""
        cfg = lambda p: SimulationConfig(protocol=p, topology="grid", group_size=20)
        a = run_many(monte_carlo(cfg("mtmrp"), 8, batch_seed=5))
        b = run_many(monte_carlo(cfg("mtmrp_nophs"), 8, batch_seed=5))
        tx_a = np.mean([r.data_transmissions for r in a])
        tx_b = np.mean([r.data_transmissions for r in b])
        e_a = np.mean([r.energy_joules for r in a])
        e_b = np.mean([r.energy_joules for r in b])
        if tx_a < tx_b:
            assert e_a <= e_b * 1.02  # small slack: PHS saves JoinReplies too
