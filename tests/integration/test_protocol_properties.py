"""Hypothesis-driven protocol invariants on random deployments."""

import networkx as nx
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.mtmrp import MtmrpAgent
from repro.net.topology import connectivity_graph
from repro.protocols.dodmrp import DodmrpAgent
from repro.protocols.odmrp import OdmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import build, run_round

FACTORIES = {
    "mtmrp": lambda: MtmrpAgent(),
    "mtmrp_nophs": lambda: MtmrpAgent(phs=False),
    "dodmrp": lambda: DodmrpAgent(),
    "odmrp": lambda: OdmrpAgent(),
}


def _random_connected_instance(seed: int, n_nodes: int, n_recv: int):
    """Draw a connected disk-graph deployment and a receiver set, or None."""
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 120, size=(n_nodes, 2))
    g = connectivity_graph(pos, 40.0)
    comp = nx.node_connected_component(g, 0)
    candidates = sorted(comp - {0})
    if len(candidates) < n_recv:
        return None
    receivers = rng.choice(candidates, size=n_recv, replace=False).tolist()
    return pos, receivers


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_nodes=st.integers(min_value=8, max_value=40),
    n_recv=st.integers(min_value=1, max_value=6),
)
def test_every_protocol_covers_every_reachable_receiver(seed, n_nodes, n_recv):
    """Property: on a loss-free medium, each protocol delivers the data
    packet to every receiver reachable from the source."""
    inst = _random_connected_instance(seed, n_nodes, n_recv)
    if inst is None:
        return
    pos, receivers = inst
    for name, factory in FACTORIES.items():
        sim, _net, agents = build(pos, 40.0, receivers=receivers,
                                  agent_factory=factory, seed=seed)
        run_round(sim, agents, settle=3.0)
        delivered = sim.trace.nodes_with(TraceKind.DELIVER)
        assert delivered == set(receivers), (name, seed)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_nodes=st.integers(min_value=8, max_value=30),
)
def test_transmitter_set_is_always_feasible(seed, n_nodes):
    """Property: the nodes that transmitted the data packet always form a
    feasible MTMR solution (connected, covering) — the protocol can be
    wasteful but never structurally broken."""
    from repro.trees.validate import is_valid_transmitter_set

    inst = _random_connected_instance(seed, n_nodes, 3)
    if inst is None:
        return
    pos, receivers = inst
    sim, net, agents = build(pos, 40.0, receivers=receivers,
                             agent_factory=lambda: MtmrpAgent(), seed=seed)
    run_round(sim, agents, settle=3.0)
    transmitters = sim.trace.nodes_with(TraceKind.TX, "DataPacket")
    g = net.graph()
    assert is_valid_transmitter_set(g, transmitters, 0, receivers)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_flood_discipline(seed):
    """Property: every node rebroadcasts the JoinQuery at most once per
    round, regardless of topology."""
    inst = _random_connected_instance(seed, 25, 4)
    if inst is None:
        return
    pos, receivers = inst
    sim, _net, agents = build(pos, 40.0, receivers=receivers,
                              agent_factory=lambda: MtmrpAgent(), seed=seed)
    run_round(sim, agents, settle=3.0)
    jq_tx = [r.node for r in sim.trace.filter(kind=TraceKind.TX, packet_type="JoinQuery")]
    assert len(jq_tx) == len(set(jq_tx))
