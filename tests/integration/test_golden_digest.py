"""Golden trace-digest regression tests.

The fast-path overhaul (sparse geometry, fire-and-forget events, rng
stream pooling, reception recycling, GC pausing) is allowed to change
*how fast* a run executes, never *what* it computes.  These digests pin
two full end-to-end runs — one per protocol family and topology — to the
exact traces the pre-optimisation tree produced.  If any "optimisation"
perturbs event ordering, rng consumption, or packet-uid assignment, the
sha256 changes and this test names the contract that was broken.

Regenerate a constant only for a change that *intentionally* alters run
semantics (and say so in the commit):

    PYTHONPATH=src python - <<'EOF'
    from repro.net.packet import reset_uids
    from repro.experiments import SimulationConfig, run_single
    from repro.sim.trace import TraceRecorder, trace_digest
    reset_uids()
    tr = TraceRecorder()
    run_single(SimulationConfig("mtmrp", "grid", group_size=12, seed=42),
               trace=tr, cache=False)
    print(trace_digest(tr))
    EOF
"""

import pytest

from repro.experiments import SimulationConfig, run_single
from repro.net.packet import reset_uids
from repro.sim.trace import TraceRecorder, trace_digest

#: (protocol, topology, seed) -> expected sha256 of the full trace
GOLDEN = {
    ("mtmrp", "grid", 42): (
        "c7771219e674bdf74bec5a0e1de78208f85de6aa3fdd7501d5e642cb510211b3"
    ),
    ("odmrp", "random", 99): (
        "7c3740d9d89e63ff675dcfc419fe42dfe7904b249088204aa0c0f043f50e1d0a"
    ),
}


def _digest(protocol: str, topology: str, seed: int) -> str:
    reset_uids()  # packet uids appear in trace details; start from 0
    tr = TraceRecorder()
    run_single(
        SimulationConfig(protocol, topology, group_size=12, seed=seed),
        trace=tr,
        cache=False,
    )
    return trace_digest(tr)


@pytest.mark.parametrize("protocol,topology,seed", sorted(GOLDEN))
def test_golden_digest(protocol, topology, seed):
    assert _digest(protocol, topology, seed) == GOLDEN[(protocol, topology, seed)]


def test_digest_is_reproducible_within_process():
    """Two back-to-back runs hash identically (no hidden global state)."""
    key = ("mtmrp", "grid", 42)
    assert _digest(*key) == _digest(*key) == GOLDEN[key]


# --------------------------------------------------------------------- #
# flag-off guards: the default single-session TrafficPlan is free
# --------------------------------------------------------------------- #
def _digest_with_sessions(protocol: str, topology: str, seed: int) -> str:
    """Same run as :func:`_digest` but with the trivially-default plan
    configured explicitly — must be byte-identical (``active_sessions``
    routes it through the exact legacy code path)."""
    from repro.traffic.spec import TrafficPlan

    reset_uids()
    tr = TraceRecorder()
    cfg = SimulationConfig(protocol, topology, group_size=12, seed=seed)
    run_single(cfg.with_(sessions=TrafficPlan.single(cfg)), trace=tr, cache=False)
    return trace_digest(tr)


@pytest.mark.parametrize("protocol,topology,seed", sorted(GOLDEN))
def test_default_traffic_plan_is_byte_identical(protocol, topology, seed):
    assert (
        _digest_with_sessions(protocol, topology, seed)
        == GOLDEN[(protocol, topology, seed)]
    )


def _corpus_scenarios():
    from pathlib import Path

    from repro.check.fuzz import load_corpus_entry

    corpus = Path(__file__).resolve().parents[1] / "corpus"
    out = []
    for path in sorted(corpus.glob("*.json")):
        scenario, _ = load_corpus_entry(path)
        if scenario.config.sessions is None:  # multi-session entries pin
            out.append((path.name, scenario))  # their own digests already
    return out


@pytest.mark.parametrize(
    "name,scenario", _corpus_scenarios(), ids=lambda x: x if isinstance(x, str) else ""
)
def test_corpus_scenarios_unchanged_by_default_plan(name, scenario):
    """Every legacy corpus scenario replays byte-identically when the
    trivially-default TrafficPlan is configured — the flag-off contract
    over the whole stressor space (faults, mobility, energy, repair)."""
    from dataclasses import replace

    from repro.check.fuzz import run_scenario
    from repro.traffic.spec import TrafficPlan

    base = run_scenario(scenario, mode="collect")
    cfg = scenario.config
    flagged = replace(cfg, sessions=TrafficPlan.single(cfg))
    again = run_scenario(replace(scenario, config=flagged), mode="collect")
    assert again.trace_sha256 == base.trace_sha256, name
