"""Small hand-built deployments for protocol unit tests.

All use the ideal MAC over a perfect channel so behaviour is a pure
function of the protocol logic and the seed.
"""

from __future__ import annotations

import numpy as np

from repro.mac.ideal import IdealMac
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind


def build(positions, comm_range, receivers, agent_factory, seed=1, group=1):
    """Wire a deployment with one routing agent per node."""
    sim = Simulator(seed=seed)
    net = Network(sim, np.asarray(positions, dtype=float), comm_range=comm_range,
                  mac_factory=IdealMac, perfect_channel=True)
    net.set_group_members(group, receivers)
    net.bootstrap_neighbor_tables()
    agents = net.install(lambda node: agent_factory())
    net.start()
    return sim, net, agents


def run_round(sim, agents, group=1, source=0, settle=2.0, data_time=1.0, seq=0):
    """One JoinQuery round followed by one data packet."""
    agents[source].request_route(group)
    sim.run(until=sim.now + settle)
    agents[source].send_data(group, seq)
    sim.run(until=sim.now + data_time)


def forwarders_of(agents, source=0, group=1):
    return {
        a.node_id
        for a in agents
        if (st := a.state_of(source, group)) is not None and st.is_forwarder
    }


def data_tx_count(sim):
    return sim.trace.count(TraceKind.TX, "DataPacket")


def delivered_nodes(sim):
    return sim.trace.nodes_with(TraceKind.DELIVER)


def line_positions(n, spacing=20.0):
    """n nodes in a line: 0 - 1 - 2 - ... (adjacent pairs only, range 25)."""
    return [[i * spacing, 0.0] for i in range(n)]
