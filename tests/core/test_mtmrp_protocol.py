"""Behavioural unit tests for MTMRP's Algorithms 1 and 2."""

import numpy as np
import pytest

from repro.core.mtmrp import MtmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import (
    build,
    data_tx_count,
    delivered_nodes,
    forwarders_of,
    line_positions,
    run_round,
)


def mtmrp(**kw):
    return lambda: MtmrpAgent(**kw)


class TestLineTopology:
    """S - A - R : the minimal relay scenario."""

    def _run(self, **kw):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2], agent_factory=mtmrp(**kw))
        run_round(sim, agents)
        return sim, net, agents

    def test_receiver_delivered(self):
        sim, _net, _agents = self._run()
        assert delivered_nodes(sim) == {2}

    def test_intermediate_marked_forwarder(self):
        _sim, _net, agents = self._run()
        assert forwarders_of(agents) == {1}

    def test_transmission_count_is_source_plus_relay(self):
        sim, _net, _agents = self._run()
        assert data_tx_count(sim) == 2  # S and A

    def test_receiver_state(self):
        _sim, _net, agents = self._run()
        st = agents[2].state_of(0, 1)
        assert st.covered and st.replied
        assert st.upstream == 1
        assert st.hop_count == 2

    def test_reverse_path_learned(self):
        _sim, _net, agents = self._run()
        assert agents[1].state_of(0, 1).upstream == 0

    def test_source_knows_connected_receiver(self):
        _sim, _net, agents = self._run()
        assert agents[0].connected_receivers == {2}


class TestDuplicateSuppression:
    def test_duplicate_join_query_dropped(self):
        # a 2x2 square: every node hears the JQ at least twice
        pos = [[0, 0], [20, 0], [0, 20], [20, 20]]
        sim, _net, agents = build(pos, 30.0, receivers=[3], agent_factory=mtmrp())
        run_round(sim, agents)
        assert sim.trace.counts[(TraceKind.DROP, "JoinQuery")] > 0
        # exactly one JQ transmission per node (flood discipline)
        jq_tx = [r.node for r in sim.trace.filter(kind=TraceKind.TX, packet_type="JoinQuery")]
        assert sorted(jq_tx) == [0, 1, 2, 3]

    def test_new_seq_replaces_session(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2], agent_factory=mtmrp())
        run_round(sim, agents, seq=0)
        st0 = agents[2].state_of(0, 1)
        assert st0.seq == 0
        run_round(sim, agents, seq=1)
        st1 = agents[2].state_of(0, 1)
        assert st1.seq == 1
        assert delivered_nodes(sim) == {2}

    def test_receiver_replies_once_per_round(self):
        pos = [[0, 0], [20, 0], [0, 20], [20, 20]]
        sim, _net, agents = build(pos, 30.0, receivers=[3], agent_factory=mtmrp())
        run_round(sim, agents)
        assert agents[3].stats["replies_originated"] == 1


class TestForwarderDedup:
    def test_shared_path_relays_reply_once(self):
        """Two receivers behind the same relay: the relay forwards the
        first JoinReply and absorbs the second (Algorithm 2, l. 8-9)."""
        # S(0) - A(1) - B(2); receivers R1(3), R2(4) both adjacent to B only
        pos = [[0, 0], [20, 0], [40, 0], [60, 10], [60, -10]]
        sim, _net, agents = build(pos, 25.0, receivers=[3, 4], agent_factory=mtmrp())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {3, 4}
        assert forwarders_of(agents) == {1, 2}
        # B originated no reply (not a member) and relayed only one of the
        # two receiver replies upstream; A likewise.
        assert agents[2].stats["replies_forwarded"] == 1
        assert agents[1].stats["replies_forwarded"] == 1
        assert data_tx_count(sim) == 3  # S, A, B


class TestReceiverAsForwarder:
    def test_covered_receiver_extends_tree_silently(self):
        """Algorithm 2 l. 10-12: a covered receiver named as next hop turns
        forwarder without re-propagating the JoinReply."""
        # chain S - R1 - R2 (both receivers)
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[1, 2],
                                  agent_factory=mtmrp())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {1, 2}
        st1 = agents[1].state_of(0, 1)
        assert st1.covered and st1.is_forwarder
        # R1's own reply reached S; R2's reply was absorbed at R1
        assert agents[1].stats["replies_forwarded"] == 0
        assert data_tx_count(sim) == 2  # S and R1


class TestPathProfit:
    def test_pp_accumulates_upstream_relay_profits(self):
        """Definition 2 via the Fig. 3 mechanism: the JoinQuery's PathProfit
        field sums the cached RelayProfits of the path."""
        # line S - A - B - C with receivers X (adjacent to A) and Y (adjacent
        # to B), plus terminal receiver at D: RP(A)=1, RP(B)=1.
        pos = [
            [0, 0],     # 0 = S
            [20, 0],    # 1 = A
            [40, 0],    # 2 = B
            [60, 0],    # 3 = C
            [20, 20],   # 4 = X (receiver, neighbor of A)
            [40, 20],   # 5 = Y (receiver, neighbor of B)
            [80, 0],    # 6 = D (receiver, neighbor of C)
        ]
        sim, _net, agents = build(pos, 25.0, receivers=[4, 5, 6], agent_factory=mtmrp())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {4, 5, 6}
        # A received the JQ from S with PP=0 and cached RP(A)=1
        st_a = agents[1].state_of(0, 1)
        assert st_a.path_profit == 0 and st_a.relay_profit == 1
        # B's JQ came from A: PP = RP(A) = 1
        st_b = agents[2].state_of(0, 1)
        assert st_b.path_profit == 1
        # C's JQ came from B: PP = RP(A) + RP(B) = 2
        st_c = agents[3].state_of(0, 1)
        assert st_c.path_profit == 2

    def test_relay_profit_cached_at_query_arrival(self):
        """Coverage updates during the backoff do NOT change the advertised
        PathProfit (the Fig. 3 walkthrough: B advertises RP computed before
        it overheard A's and C's replies)."""
        # S with two receiver neighbors R1, R2 and a relay B; a far receiver
        # behind B.  B's RP is 0 (R1/R2 are not B's neighbors? make them so):
        pos = [
            [0, 0],     # 0 = S
            [20, 0],    # 1 = B relay
            [20, 20],   # 2 = R1 receiver, neighbor of S and B
            [20, -20],  # 3 = R2 receiver, neighbor of S and B
            [45, 0],    # 4 = R3 far receiver reachable ONLY via B (25 m)
        ]
        # range 29: S-B 20, S-R1/R2 28.3, B-R3 25; R1/R2-R3 is 32 (out)
        sim, _net, agents = build(pos, 29.0, receivers=[2, 3, 4], agent_factory=mtmrp())
        run_round(sim, agents)
        st_b = agents[1].state_of(0, 1)
        # B cached RP=3 when the JQ arrived (R1, R2, R3 all uncovered then),
        # even though R1/R2 replied before B's backoff expired.
        assert st_b.relay_profit == 3
        st_r3 = agents[4].state_of(0, 1)
        assert st_r3.path_profit == 3


class TestOverhearingMarks:
    def test_original_reply_marks_covered(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2], agent_factory=mtmrp())
        run_round(sim, agents)
        session = (0, 1, 0)
        # A (node 1) heard R's original JoinReply -> covered mark
        entry = agents[1].node.neighbor_table.entry(2)
        assert session in entry.covered_sessions

    def test_relayed_reply_marks_forwarder(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=mtmrp())
        run_round(sim, agents)
        session = (0, 1, 0)
        # node 1 heard node 2 relaying R's reply -> forwarder mark
        entry = agents[1].node.neighbor_table.entry(2)
        assert session in entry.forwarder_sessions


class TestDataPlane:
    def test_forwarder_forwards_first_copy_only(self):
        pos = [[0, 0], [20, 0], [0, 20], [20, 20], [40, 20]]
        sim, _net, agents = build(pos, 30.0, receivers=[4], agent_factory=mtmrp())
        run_round(sim, agents)
        # every data transmitter transmitted exactly once
        tx_nodes = [r.node for r in sim.trace.filter(kind=TraceKind.TX, packet_type="DataPacket")]
        assert len(tx_nodes) == len(set(tx_nodes))

    def test_non_forwarder_does_not_forward(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[1], agent_factory=mtmrp())
        run_round(sim, agents)
        # node 2 (beyond the receiver) hears data but must stay silent
        assert 2 not in {
            r.node for r in sim.trace.filter(kind=TraceKind.TX, packet_type="DataPacket")
        }

    def test_multiple_data_packets_reuse_tree(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=mtmrp())
        run_round(sim, agents)
        jq_before = sim.trace.count(TraceKind.TX, "JoinQuery")
        agents[0].send_data(1, 1)
        agents[0].send_data(1, 2)
        sim.run(until=sim.now + 1.0)
        assert sim.trace.count(TraceKind.TX, "JoinQuery") == jq_before  # no re-flood
        assert sim.trace.count(TraceKind.TX, "DataPacket") == 3 * 3  # 3 packets x (S, A, B)


class TestProtocolName:
    def test_labels(self):
        assert MtmrpAgent().protocol_name == "MTMRP"
        assert MtmrpAgent(phs=False).protocol_name == "MTMRP w/o PHS"
