"""Unit + property tests for the biased backoff scheme (Eqs. 2-4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.backoff import BackoffParams, BiasedBackoff


@pytest.fixture
def bo():
    return BiasedBackoff(BackoffParams(n=4.0, w=0.001))


class TestEq2RelayDelay:
    def test_monotone_decreasing(self, bo):
        delays = [bo.relay_delay(rp) for rp in range(8)]
        assert delays == sorted(delays, reverse=True)

    def test_exponential_halving(self, bo):
        """Eq. (2)'s 2^(-RP) form: one more unit of RelayProfit halves it."""
        assert bo.relay_delay(3) == pytest.approx(bo.relay_delay(2) / 2)

    def test_zero_profit_value(self, bo):
        assert bo.relay_delay(0) == pytest.approx(2.0 * 4.0 * 0.001)

    def test_negative_rejected(self, bo):
        with pytest.raises(ValueError):
            bo.relay_delay(-1)


class TestEq3PathScale:
    def test_monotone_decreasing(self, bo):
        scales = [bo.path_scale(pp) for pp in range(10)]
        assert scales == sorted(scales, reverse=True)

    def test_hyperbolic_form(self, bo):
        assert bo.path_scale(0) / bo.path_scale(3) == pytest.approx(7.0)

    def test_fig3_collapse(self, bo):
        """Fig. 3's mechanism: at PP=2 a node fires several times sooner
        than a same-RP node at PP=0 — the factor reading of Eq. (3)."""
        rng = np.random.default_rng(0)
        d_b = [bo.delay(2, 0, False, rng) for _ in range(50)]
        d_e = [bo.delay(2, 2, False, rng) for _ in range(50)]
        assert np.mean(d_b) / np.mean(d_e) == pytest.approx(5.0, rel=0.15)

    def test_fig3_bracket_bands(self, bo):
        """The reconstructed constants reproduce the figure's brackets:
        B (RP=2, PP=0, non-member) in [3w, 4w]; A (RP=1, PP=0, member) in
        [4w, 5w] — so B always fires first despite A's member bonus."""
        w = bo.params.w
        rng = np.random.default_rng(1)
        for _ in range(50):
            d_b = bo.delay(2, 0, False, rng)
            d_a = bo.delay(1, 0, True, rng)
            assert 3 * w <= d_b <= 4 * w
            assert 4 * w <= d_a <= 5 * w

    def test_saturates_at_n(self, bo):
        """"N is set to limit the backoff delay within a certain range":
        the factor stops shrinking once PP reaches N."""
        n = int(bo.params.n)
        assert bo.path_scale(n) == bo.path_scale(n + 1) == bo.path_scale(n + 50)
        assert bo.path_scale(n - 1) > bo.path_scale(n)

    def test_negative_rejected(self, bo):
        with pytest.raises(ValueError):
            bo.path_scale(-2)


class TestEq4Jitter:
    def test_member_band_below_nonmember_band(self, bo):
        """Fig. 2's bias: the two uniform bands do not overlap."""
        m_lo, m_hi = bo.jitter_bounds(True)
        n_lo, n_hi = bo.jitter_bounds(False)
        assert (m_lo, m_hi) == (0.0, 0.001)
        assert (n_lo, n_hi) == (0.001, 0.002)
        assert m_hi <= n_lo

    def test_equal_profits_member_always_earlier(self, bo):
        """Fig. 2: with the same RP and PP, the member forwards first."""
        rng = np.random.default_rng(1)
        for _ in range(100):
            dm = bo.delay(1, 1, True, rng)
            dn = bo.delay(1, 1, False, rng)
            assert dm < dn


class TestDelayComposition:
    @given(
        rp=st.integers(min_value=0, max_value=20),
        pp=st.integers(min_value=0, max_value=50),
        member=st.booleans(),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_delay_bounded_property(self, rp, pp, member, seed):
        """Property: every delay is positive and below max_delay()."""
        bo = BiasedBackoff(BackoffParams(n=4.0, w=0.001))
        d = bo.delay(rp, pp, member, np.random.default_rng(seed))
        assert 0.0 < d <= bo.max_delay()

    @given(
        rp=st.integers(min_value=0, max_value=10),
        pp=st.integers(min_value=0, max_value=10),
        seed=st.integers(min_value=0, max_value=100),
        member=st.booleans(),
    )
    def test_more_profit_never_hurts_property(self, rp, pp, seed, member):
        """Property: the delay is monotone non-increasing in both profits
        (for a fixed jitter draw)."""
        bo = BiasedBackoff(BackoffParams(n=4.0, w=0.001))
        base = bo.delay(rp, pp, member, np.random.default_rng(seed))
        better_rp = bo.delay(rp + 1, pp, member, np.random.default_rng(seed))
        better_pp = bo.delay(rp, pp + 1, member, np.random.default_rng(seed))
        assert better_rp <= base
        assert better_pp <= base

    def test_scaling_with_w(self):
        """Larger w amplifies everything proportionally (Figs. 7-8 knob)."""
        lo = BiasedBackoff(BackoffParams(n=4.0, w=0.001))
        hi = BiasedBackoff(BackoffParams(n=4.0, w=0.01))
        assert hi.relay_delay(2) == pytest.approx(10 * lo.relay_delay(2))
        assert hi.path_scale(3) == pytest.approx(lo.path_scale(3))  # pure factor

    def test_scaling_with_n(self):
        """Larger N widens the deterministic spread but not the jitter."""
        lo = BiasedBackoff(BackoffParams(n=3.0, w=0.001))
        hi = BiasedBackoff(BackoffParams(n=6.0, w=0.001))
        spread_lo = lo.relay_delay(0) - lo.relay_delay(3)
        spread_hi = hi.relay_delay(0) - hi.relay_delay(3)
        assert spread_hi == pytest.approx(2 * spread_lo)
        assert lo.jitter_bounds(False) == hi.jitter_bounds(False)


def test_params_validation():
    with pytest.raises(ValueError):
        BackoffParams(n=0.0, w=0.001)
    with pytest.raises(ValueError):
        BackoffParams(n=4.0, w=-1.0)


def test_default_params_match_paper():
    p = BackoffParams()
    assert p.n == 4.0
    assert p.w == 0.001


def test_max_delay_is_worst_case(bo):
    assert bo.max_delay() == pytest.approx(bo.relay_delay(0) + 2 * 0.001)
