"""Unit tests for the control-message dataclasses."""

from repro.core.messages import JoinQuery, JoinReply, RouteError
from repro.net.packet import BROADCAST


class TestJoinQuery:
    def test_defaults(self):
        jq = JoinQuery(src=3, source=0, group=1, seq=2)
        assert jq.dst == BROADCAST
        assert jq.hop_count == 0
        assert jq.path_profit == 0

    def test_forwarding_clone_preserves_session(self):
        jq = JoinQuery(src=0, source=0, group=1, seq=2, hop_count=3, path_profit=4)
        fwd = jq.clone_for_forwarding(9)
        assert fwd.session == jq.session
        assert fwd.hop_count == 3 and fwd.path_profit == 4
        assert fwd.src == 9 and fwd.uid != jq.uid

    def test_size_includes_profit_fields(self):
        assert JoinQuery(src=0).size_bits() > 192  # header + fields


class TestJoinReply:
    def test_session_and_origin(self):
        jr = JoinReply(src=5, dst=4, nexthop=4, receiver=5, source=0, group=1, seq=2)
        assert jr.session == (0, 1, 2)
        assert jr.is_original
        relay = JoinReply(src=4, dst=3, nexthop=3, receiver=5, source=0, group=1, seq=2)
        assert not relay.is_original

    def test_unicast_addressing(self):
        jr = JoinReply(src=5, dst=4, nexthop=4, receiver=5)
        assert jr.dst == 4 != BROADCAST


class TestRouteError:
    def test_fields(self):
        re = RouteError(src=7, receiver=7, source=0, group=1, seq=3, failed_node=2)
        assert re.session == (0, 1, 3)
        assert re.failed_node == 2
        assert re.dst == BROADCAST  # flooded

    def test_default_failed_node_sentinel(self):
        assert RouteError(src=1).failed_node == -1
