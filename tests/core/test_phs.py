"""Tests for the path handover scheme (Sec. IV-C-4, Fig. 4)."""

import numpy as np

from repro.core.mtmrp import MtmrpAgent
from repro.net.topology import random_topology
from repro.sim.trace import TraceKind
from tests.core.helpers import (
    build,
    data_tx_count,
    delivered_nodes,
    forwarders_of,
    run_round,
)


def mtmrp(**kw):
    return lambda: MtmrpAgent(**kw)


def _fig4_like_positions():
    """Two parallel branches sharing a neighborhood near the far end.

    Layout (range 25, spacing 20):

        S - A - B - C - R1     (upper branch, R1 a receiver)
              \\
        and a lower receiver R2 whose reverse path runs through H, a
        neighbor of C.  When R1's reply establishes C as a forwarder
        before R2's reply reaches H, PHS lets H join C's tree instead of
        building a second full path.
    """
    return [
        [0, 0],     # 0 S
        [20, 0],    # 1 A
        [40, 0],    # 2 B
        [60, 0],    # 3 C
        [80, 0],    # 4 R1 (receiver)
        [60, 20],   # 5 H (neighbor of C: distance 20)
        [80, 20],   # 6 R2 (receiver, neighbor of H)
    ]


class TestHandoverScenario:
    def test_both_variants_deliver(self):
        for phs in (True, False):
            sim, _net, agents = build(_fig4_like_positions(), 25.0,
                                      receivers=[4, 6], agent_factory=mtmrp(phs=phs))
            run_round(sim, agents)
            assert delivered_nodes(sim) == {4, 6}, f"phs={phs}"

    def test_phs_never_costs_more_transmissions(self):
        costs = {}
        for phs in (True, False):
            sim, _net, agents = build(_fig4_like_positions(), 25.0,
                                      receivers=[4, 6], agent_factory=mtmrp(phs=phs))
            run_round(sim, agents)
            costs[phs] = data_tx_count(sim)
        assert costs[True] <= costs[False]

    def test_handover_or_suppression_occurred(self):
        sim, _net, agents = build(_fig4_like_positions(), 25.0,
                                  receivers=[4, 6], agent_factory=mtmrp(phs=True))
        run_round(sim, agents)
        saved = sum(
            a.stats["handovers"] + a.stats["replies_suppressed"] for a in agents
        )
        assert saved >= 1

    def test_without_phs_no_handover_stats(self):
        sim, _net, agents = build(_fig4_like_positions(), 25.0,
                                  receivers=[4, 6], agent_factory=mtmrp(phs=False))
        run_round(sim, agents)
        assert all(a.stats["handovers"] == 0 for a in agents)
        assert all(a.stats["replies_suppressed"] == 0 for a in agents)


class TestReceiverSuppression:
    def test_suppressed_receiver_is_still_covered_and_served(self):
        """A receiver that stays silent because a forwarder neighbor exists
        must still receive the data (Algorithm 1, lines 4-5 + 9)."""
        # Build a topology where a second receiver R2 sits next to the
        # R1-serving relay and gets its JoinQuery *late* (long path), so the
        # relay is already marked by the time R2's JQ arrives.
        pos = [
            [0, 0],    # 0 S
            [20, 0],   # 1 A
            [40, 0],   # 2 B (will serve R1)
            [60, 0],   # 3 R1 (receiver)
            [40, 20],  # 4 R2 (receiver, neighbor of B only... and A? 28.3)
        ]
        # range 25: A-R2 distance 28.3 -> only B reaches R2
        sim, _net, agents = build(pos, 25.0, receivers=[3, 4], agent_factory=mtmrp())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {3, 4}
        st4 = agents[4].state_of(0, 1)
        assert st4.covered


class TestHandoverCycleRegression:
    """Regression for the downstream-children deadlock.

    Without excluding the JoinReply's sender (and previous children) from
    the handover check, a node could 'hand over' to the very forwarder
    that depends on it for data, starving whole subtrees.  Delivery must
    be 100% on a perfect channel across many random instances.
    """

    def test_full_delivery_across_random_instances(self):
        failures = []
        for seed in range(25):
            pos = random_topology(120, 200.0, rng=np.random.default_rng(seed),
                                  comm_range=40.0)
            rng = np.random.default_rng(seed + 999)
            receivers = rng.choice(np.arange(1, 120), size=18, replace=False).tolist()
            sim, _net, agents = build(pos, 40.0, receivers=receivers,
                                      agent_factory=mtmrp(phs=True), seed=seed)
            run_round(sim, agents)
            if delivered_nodes(sim) != set(receivers):
                failures.append(seed)
        assert failures == []

    def test_children_are_excluded_from_handover(self):
        """Direct check: the child that named us next hop is recorded."""
        sim, _net, agents = build(_fig4_like_positions(), 25.0,
                                  receivers=[4, 6], agent_factory=mtmrp())
        run_round(sim, agents)
        # C (node 3) acted as next hop of R1's reply relayed by... R1 itself
        st3 = agents[3].state_of(0, 1)
        assert 4 in st3.downstream_children


class TestPhsAtScale:
    def test_phs_saves_on_the_paper_grid(self):
        """Across seeds on the 10x10 grid, PHS reduces mean transmissions."""
        from repro.net.topology import grid_topology

        def mean_cost(phs):
            vals = []
            for seed in range(8):
                rng = np.random.default_rng(seed)
                receivers = rng.choice(np.arange(1, 100), size=20, replace=False).tolist()
                sim, _net, agents = build(grid_topology(), 40.0, receivers=receivers,
                                          agent_factory=mtmrp(phs=phs), seed=seed)
                run_round(sim, agents)
                vals.append(data_tx_count(sim))
            return float(np.mean(vals))

        assert mean_cost(True) < mean_cost(False)
