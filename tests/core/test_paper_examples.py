"""Scenario tests reconstructing the paper's worked examples (Figs. 1-3)."""

import numpy as np

from repro.core.mtmrp import MtmrpAgent
from repro.protocols.odmrp import OdmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import (
    build,
    data_tx_count,
    delivered_nodes,
    forwarders_of,
    run_round,
)


def fig3_positions():
    """The Fig. 1(c)/Fig. 3 network: source S, a 3x3 relay grid, sink J.

        A  D  G
    S   B  E  H   J
        C  F  I

    Spacing 20 m, range 25 m -> 4-adjacency inside the grid ("no diagonal
    links").  S sits at (8, 0) so that it is adjacent to A, B *and* C, as
    the walkthrough requires ("Nodes A, B and C receive the JoinQuery
    forwarded by node S"): S-A = S-C = 23.3 m, S-B = 12 m, S-E = 32 m.
    """
    return [
        [8, 0],      # 0 S
        [20, 20],    # 1 A
        [20, 0],     # 2 B
        [20, -20],   # 3 C
        [40, 20],    # 4 D
        [40, 0],     # 5 E
        [40, -20],   # 6 F
        [60, 20],    # 7 G
        [60, 0],     # 8 H
        [60, -20],   # 9 I
        [80, 0],     # 10 J
    ]


#: receivers per the Fig. 3 walkthrough: A, C reply to S directly; D, F,
#: G, I flank the middle corridor; J terminates it.
FIG3_RECEIVERS = [1, 3, 4, 6, 7, 9, 10]


class TestFig3Walkthrough:
    def test_all_receivers_covered(self):
        sim, _net, agents = build(fig3_positions(), 25.0, receivers=FIG3_RECEIVERS,
                                  agent_factory=lambda: MtmrpAgent(), seed=3)
        run_round(sim, agents)
        assert delivered_nodes(sim) == set(FIG3_RECEIVERS)

    def test_middle_corridor_profits(self):
        """RP(B)=2 (A, C uncovered at JQ arrival); PP accumulates 0 -> 2 -> 4
        along S-B-E-H exactly as the Fig. 3 labels say."""
        sim, _net, agents = build(fig3_positions(), 25.0, receivers=FIG3_RECEIVERS,
                                  agent_factory=lambda: MtmrpAgent(), seed=3)
        run_round(sim, agents)
        st_b = agents[2].state_of(0, 1)
        assert st_b.relay_profit == 2  # covers A and C
        assert st_b.path_profit == 0
        assert st_b.hop_count == 1
        st_e = agents[5].state_of(0, 1)
        st_h = agents[8].state_of(0, 1)
        # E's and H's JQ may arrive via the corridor (B, E) or a flank;
        # when the corridor wins the labels match the figure exactly.
        if st_e.upstream == 2 and st_h.upstream == 5:
            assert st_e.path_profit == 2
            assert st_h.path_profit == 4
            assert st_e.relay_profit == 2  # covers D and F
            # Definition 1 gives H profit 3 (G, I *and* the terminal sink
            # J are uncovered receiver neighbors); the figure's label "2"
            # apparently excludes the sink.
            assert st_h.relay_profit == 3

    def test_minimum_transmission_outcome_reachable(self):
        """Fig. 1(c) idealises a 4-transmission tree (S, B, E, H).  That
        exact end state requires the wing receivers to hear the corridor's
        two-hop JoinQuery before the one-hop wing relays fire — causally
        impossible in some draws (DESIGN.md §2) — so the best *reachable*
        tree adds one wing relay: 5 transmissions.  MTMRP must find it and
        never degrade to the flood-like worst case."""
        costs = []
        for seed in range(20):
            sim, _net, agents = build(fig3_positions(), 25.0, receivers=FIG3_RECEIVERS,
                                      agent_factory=lambda: MtmrpAgent(), seed=seed)
            run_round(sim, agents)
            assert delivered_nodes(sim) == set(FIG3_RECEIVERS)
            costs.append(data_tx_count(sim))
        assert min(costs) == 5
        assert max(costs) <= 8
        assert float(np.mean(costs)) <= 6.5

    def test_mtmrp_beats_odmrp_on_fig1_network(self):
        """Fig. 1's point: the shortest-path flood (ODMRP) spends more
        transmissions than the biased flood on this topology, on average."""

        def mean_cost(factory):
            vals = []
            for seed in range(12):
                sim, _net, agents = build(fig3_positions(), 25.0,
                                          receivers=FIG3_RECEIVERS,
                                          agent_factory=factory, seed=seed)
                run_round(sim, agents)
                vals.append(data_tx_count(sim))
            return float(np.mean(vals))

        assert mean_cost(lambda: MtmrpAgent()) < mean_cost(lambda: OdmrpAgent())


class TestFig2MemberBias:
    """Fig. 2: with equal profits, the member-side path wins."""

    def _diamond(self):
        """S -> {B (plain), C (receiver)} -> D (receiver).  B and C have the
        same RP/PP; Eq. (4)'s jitter bands must route through C."""
        return [
            [0, 0],     # 0 S
            [20, 15],   # 1 B  (non-member)
            [20, -15],  # 2 C  (receiver)
            [40, 0],    # 3 D  (receiver)
        ]

    def test_member_chosen_as_forwarder(self):
        wins = 0
        for seed in range(10):
            sim, _net, agents = build(self._diamond(), 26.0, receivers=[2, 3],
                                      agent_factory=lambda: MtmrpAgent(), seed=seed)
            run_round(sim, agents)
            assert delivered_nodes(sim) == {2, 3}
            fw = forwarders_of(agents)
            if fw == {2}:
                wins += 1
        # the bands are disjoint, so C must win deterministically
        assert wins == 10

    def test_member_route_uses_fewer_extra_nodes(self):
        sim, _net, agents = build(self._diamond(), 26.0, receivers=[2, 3],
                                  agent_factory=lambda: MtmrpAgent(), seed=0)
        run_round(sim, agents)
        transmitters = sim.trace.nodes_with(TraceKind.TX, "DataPacket")
        extra = transmitters - {0, 2, 3}
        assert extra == set()  # Fig. 2(b): one less extra node
