"""Route recovery tests (Sec. IV-D)."""

import numpy as np

from repro.core.mtmrp import MtmrpAgent
from repro.mac.ideal import IdealMac
from repro.net.network import Network
from repro.net.topology import grid_topology
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind
from tests.core.helpers import build, line_positions, run_round


def _delivered_for_seq(sim, receivers, seq, source=0, group=1):
    return {
        rec.node
        for rec in sim.trace.filter(kind=TraceKind.DELIVER)
        if rec.node in receivers and rec.detail == (source, group, seq)
    }


class TestRouteError:
    def test_route_error_triggers_source_reflood(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3],
                                  agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        assert agents[3].state_of(0, 1).seq == 0
        agents[3].report_route_failure(0, 1, failed_node=2)
        sim.run(until=sim.now + 3.0)
        # the source re-flooded: everyone is now on round 1
        assert agents[0].state_of(0, 1).seq == 1
        assert agents[3].state_of(0, 1).seq == 1

    def test_route_error_flood_is_deduplicated(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3],
                                  agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        agents[3].report_route_failure(0, 1)
        sim.run(until=sim.now + 3.0)
        re_tx = [r.node for r in sim.trace.filter(kind=TraceKind.TX, packet_type="RouteError")]
        assert len(re_tx) == len(set(re_tx))  # each node forwards once

    def test_check_route_health_reports_missing_forwarder(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        # data arrived via node 1; now its neighbor-table entry expires
        assert agents[2].check_route_health(0, 1) is True
        agents[2].node.neighbor_table.remove(1)
        assert agents[2].check_route_health(0, 1) is False
        assert agents[2].stats["route_errors_sent"] == 1

    def test_check_route_health_without_data_is_healthy(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: MtmrpAgent())
        # no data received yet -> nothing to complain about
        assert agents[2].check_route_health(0, 1) is True


class TestEndToEndRecovery:
    def test_tree_rebuilds_around_dead_forwarder(self):
        """Kill the only relay on a line; after RouteError + re-flood the
        alternative path restores delivery."""
        # S - A - R with a redundant relay B parallel to A
        pos = [
            [0, 0],    # 0 S
            [20, 8],   # 1 A
            [20, -8],  # 2 B
            [40, 0],   # 3 R
        ]
        sim, net, agents = build(pos, 25.0, receivers=[3], agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        assert _delivered_for_seq(sim, {3}, 0) == {3}
        serving = agents[3].last_data_from[(0, 1)]
        assert serving in (1, 2)
        net.node(serving).fail()

        # packet 1 is lost
        agents[0].send_data(1, 1)
        sim.run(until=sim.now + 1.0)
        assert _delivered_for_seq(sim, {3}, 1) == set()

        # receiver notices (entry removed as HELLO maintenance would do)
        agents[3].node.neighbor_table.remove(serving)
        assert agents[3].check_route_health(0, 1) is False
        sim.run(until=sim.now + 3.0)

        # rebuilt tree carries packet 2 via the surviving relay
        agents[0].send_data(1, 2)
        sim.run(until=sim.now + 1.0)
        assert _delivered_for_seq(sim, {3}, 2) == {3}
        other = 1 if serving == 2 else 2
        assert agents[other].state_of(0, 1).is_forwarder
