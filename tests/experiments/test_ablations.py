"""Tests for the ablation experiment definitions."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    centralized_gap,
    mac_ablation,
    phs_ablation,
    shadowing_ablation,
)


def test_phs_ablation_saves_transmissions():
    cmp = phs_ablation(runs=10)
    assert cmp.a == "mtmrp" and cmp.b == "mtmrp_nophs"
    assert cmp.n == 10
    assert cmp.mean_diff >= 0  # PHS never costs transmissions on average


def test_mac_ablation_ordering_robust():
    out = mac_ablation(runs=10)
    assert set(out) == {"ideal", "csma"}
    for mac, cmp in out.items():
        assert cmp.mean_diff > 0, mac  # MTMRP beats ODMRP under both MACs


def test_shadowing_degrades_delivery():
    out = shadowing_ablation(sigmas_db=(0.0, 6.0), runs=8)
    clean = out[0.0]["delivery_ratio"]["mean"]
    faded = out[6.0]["delivery_ratio"]["mean"]
    assert clean >= 0.99
    assert faded < clean  # the paper's assumption hides real losses


def test_construction_latency_price():
    from repro.experiments.ablations import construction_latency_price

    out = construction_latency_price(runs=6, ws=(0.001, 0.03))
    # the biased backoff costs construction latency, growing with w ...
    assert out["mtmrp(w=0.001)"]["latency"] > 0
    assert out["mtmrp(w=0.03)"]["latency"] > 5 * out["mtmrp(w=0.001)"]["latency"]
    # ... and ODMRP's plain jittered flood is the fastest
    assert out["odmrp"]["latency"] <= out["mtmrp(w=0.03)"]["latency"]


def test_centralized_gap_ordering():
    gap = centralized_gap(rounds=5)
    # centralized greedy (global view) beats the distributed protocol...
    assert gap["greedy"] <= gap["mtmrp"]
    # ...and the distributed protocol stays within ~2x of it
    assert gap["mtmrp"] <= 2.0 * gap["greedy"]
