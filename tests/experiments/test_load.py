"""Tests for the CBR traffic-load experiments."""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.load import CbrResult, load_sweep, run_cbr


def test_run_cbr_low_rate_full_delivery():
    cfg = SimulationConfig(protocol="mtmrp", topology="grid", group_size=10,
                           mac="ideal", seed=3)
    res = run_cbr(cfg, rate_pps=2.0, n_packets=5)
    assert isinstance(res, CbrResult)
    assert res.packets_sent == 5
    assert res.delivery_ratio == 1.0  # lossless medium
    assert res.tx_per_packet >= 1.0
    assert res.goodput_rps == pytest.approx(res.delivery_ratio * 10 * 2.0)


def test_run_cbr_deterministic():
    cfg = SimulationConfig(protocol="odmrp", topology="grid", group_size=10,
                           mac="ideal", seed=4)
    assert run_cbr(cfg, 5.0, n_packets=4) == run_cbr(cfg, 5.0, n_packets=4)


def test_load_sweep_shape():
    out = load_sweep(rates_pps=(1.0, 5.0), runs=2, n_packets=5)
    assert set(out) == {1.0, 5.0}
    for v in out.values():
        assert {"delivery_ratio", "goodput_rps", "tx_per_packet", "collisions"} <= set(v)
        assert 0.0 <= v["delivery_ratio"] <= 1.0


def test_saturation_degrades_delivery():
    """Under CSMA, pushing the rate far past the forwarding jitter budget
    must cost delivery (the congestion knee)."""
    low = load_sweep(rates_pps=(1.0,), runs=3, n_packets=8)[1.0]
    high = load_sweep(rates_pps=(100.0,), runs=3, n_packets=8)[100.0]
    assert high["delivery_ratio"] < low["delivery_ratio"]
    assert low["delivery_ratio"] >= 0.97
