"""Tests for checkpointed campaigns."""

import json

import pytest

from repro.experiments import SimulationConfig, monte_carlo
from repro.experiments.campaign import config_key, load_campaign, run_campaign

FAST = dict(topology="grid", group_size=10, mac="ideal")


def _configs(n=3):
    return monte_carlo(SimulationConfig(protocol="odmrp", **FAST), n, batch_seed=1)


def test_run_and_load_roundtrip(tmp_path):
    path = tmp_path / "campaign.jsonl"
    records = run_campaign(_configs(), path)
    assert len(records) == 3
    index, loaded = load_campaign(path)
    assert len(loaded) == 3
    assert all("_config" in r and "data_transmissions" in r for r in loaded)
    assert len(index) == 3


def test_resume_skips_done_configs(tmp_path):
    path = tmp_path / "campaign.jsonl"
    run_campaign(_configs(2), path)
    calls = []
    run_campaign(_configs(4), path, progress=lambda i, n: calls.append((i, n)))
    # only the 2 new configs were executed
    assert calls == [(1, 2), (2, 2)]
    _index, records = load_campaign(path)
    assert len(records) == 4


def test_config_key_stable_and_distinct():
    a, b = _configs(2)
    assert config_key(a) == config_key(a.with_())
    assert config_key(a) != config_key(b)


def test_records_rebuild_configs(tmp_path):
    path = tmp_path / "c.jsonl"
    run_campaign(_configs(1), path)
    _idx, records = load_campaign(path)
    cfg = SimulationConfig(**records[0]["_config"])
    assert cfg.protocol == "odmrp"
    assert cfg.group_size == 10


def test_missing_file_loads_empty(tmp_path):
    index, records = load_campaign(tmp_path / "nope.jsonl")
    assert index == {} and records == []


def test_file_is_json_lines(tmp_path):
    path = tmp_path / "c.jsonl"
    run_campaign(_configs(2), path)
    lines = path.read_text().strip().split("\n")
    assert len(lines) == 2
    for line in lines:
        json.loads(line)  # every line is standalone JSON


def test_parallel_warm_campaign_matches_serial(tmp_path):
    cfgs = monte_carlo(SimulationConfig(protocol="mtmrp", topology="grid", group_size=10), 5, 321)
    serial, parallel = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
    run_campaign(cfgs, serial, workers=1, warm=False)
    run_campaign(cfgs, parallel, workers=2, warm=True)
    idx_s, recs_s = load_campaign(serial)
    idx_p, recs_p = load_campaign(parallel)
    assert idx_s == idx_p and len(recs_p) == 5
    # checkpoints are complete: a rerun finds nothing to do
    before = parallel.read_text()
    run_campaign(cfgs, parallel, workers=2, warm=True)
    assert parallel.read_text() == before
