"""Smoke tests for the figure definitions (tiny run counts)."""

import pytest

from repro.experiments import figures


def test_sweep_result_accessors():
    sweep = figures.fig5(runs=2, group_sizes=(5, 10), protocols=("odmrp",))
    assert sweep.xs == [5, 10]
    assert ("odmrp", 5) in sweep.runs
    series = sweep.series("odmrp", "data_transmissions")
    assert len(series) == 2
    assert sweep.mean("odmrp", 5, "data_transmissions") == series[0]
    assert sweep.sem("odmrp", 5, "data_transmissions") >= 0


def test_fig5_receiver_draws_paired_across_protocols():
    """Same batch seed per group size -> identical receiver draws for all
    protocols (paired comparison, as the paper's per-round averaging)."""
    sweep = figures.fig5(runs=2, group_sizes=(10,), protocols=("odmrp", "mtmrp"))
    odmrp_recv = [r.receivers for r in sweep.runs[("odmrp", 10)]]
    mtmrp_recv = [r.receivers for r in sweep.runs[("mtmrp", 10)]]
    assert odmrp_recv == mtmrp_recv


def test_fig6_uses_random_topology():
    sweep = figures.fig6(runs=1, group_sizes=(10,), protocols=("odmrp",))
    res = sweep.runs[("odmrp", 10)][0]
    assert res.topology == "random"


def test_fig7_parameter_grid():
    sweep = figures.fig7(runs=1, ns=(3.0, 4.0), ws=(0.001,), protocols=("mtmrp",))
    assert sweep.xs == [(3.0, 0.001), (4.0, 0.001)]
    for (n, w) in sweep.xs:
        res = sweep.runs[("mtmrp", (n, w))][0]
        assert res.backoff_n == n and res.backoff_w == w


def test_fig9_snapshot_shapes():
    snaps = figures.fig9(seed=1, protocols=("odmrp",))
    res = snaps["odmrp"]
    assert res.positions is not None
    assert len(res.receivers) == 20
    assert res.topology == "grid"


def test_fig10_snapshot_shapes():
    snaps = figures.fig10(seed=1, protocols=("mtmrp",))
    res = snaps["mtmrp"]
    assert len(res.receivers) == 15
    assert res.topology == "random"
    assert res.positions.shape == (200, 2)
