"""Tests for the command-line entry point."""

import json

import pytest

from repro.experiments.__main__ import main


def test_fig9_command(capsys):
    rc = main(["fig9"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Fig. 9" in out
    assert "MTMRP:" in out and "ODMRP:" in out
    assert "transmissions" in out


def test_fig10_with_explicit_seed(capsys):
    rc = main(["fig10", "--seed", "1011"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "MTMRP: 16 transmissions" in out  # the paper-caption round


def test_fig5_tiny(capsys, monkeypatch):
    # shrink the sweep so the CLI test stays fast
    from repro.experiments import figures

    monkeypatch.setattr(figures, "GROUP_SIZES", (10,))
    rc = main(["fig5", "--runs", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Normalized transmission overhead" in out
    assert "Average relay profit" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_obs_command(capsys, tmp_path, monkeypatch):
    """The obs CLI runs an observed campaign and writes parseable exports."""
    monkeypatch.chdir(tmp_path)
    out_dir = tmp_path / "obs_out"
    rc = main(["obs", "--runs", "4", "--seed", "9", "--obs-out", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Observed campaign" in out
    assert "counters" in out and "protocol-phase spans" in out
    assert "delivery" in out  # sparkline labels
    # every export parses
    from repro.obs import parse_prometheus_text

    prom = parse_prometheus_text((out_dir / "counters.prom").read_text())
    assert prom["repro_tx"] > 0
    for name in ("samples.jsonl", "spans.jsonl"):
        for line in (out_dir / name).read_text().splitlines():
            if line:
                json.loads(line)
    chrome = json.loads((out_dir / "spans_chrome.json").read_text())
    assert chrome["traceEvents"]
    counters = json.loads((out_dir / "counters.json").read_text())
    assert counters["counters"]["delivers"] > 0


def test_obs_excluded_from_all():
    from repro.experiments.__main__ import _NON_FIGURE

    assert "obs" in _NON_FIGURE


class TestBenchGate:
    def test_compare_to_baseline_flags_only_regressions(self, tmp_path):
        from repro.experiments.bench import compare_to_baseline

        baseline = tmp_path / "BENCH_core.json"
        baseline.write_text(json.dumps({"benchmarks": {
            "fast_path": {"wall_s": 0.100},
            "memory": {"peak_mb": 10.0},
            "retired_workload": {"wall_s": 1.0},
        }}))
        results = {
            "fast_path": {"wall_s": 0.120},      # +20%: inside the gate
            "memory": {"peak_mb": 14.0},          # +40%: regression
            "brand_new_workload": {"wall_s": 5.0},  # no baseline: skipped
        }
        regs = compare_to_baseline(results, baseline, threshold=0.25)
        assert [r[0] for r in regs] == ["memory"]
        name, base, cur, ratio = regs[0]
        assert (base, cur) == (10.0, 14.0) and ratio == pytest.approx(1.4)
        assert compare_to_baseline(results, baseline, threshold=0.5) == []

    def test_first_seen_workload_is_its_own_baseline(self, tmp_path):
        """A benchmark absent from the committed file never regresses.

        Regression guard for the schema gap where newly introduced
        workloads were silently skipped by the gate *and* written without
        ``baseline_wall_s``/``speedup``: first-seen entries now grade
        against themselves (ratio 1.0) no matter how slow they are.
        """
        from repro.experiments.bench import compare_to_baseline

        baseline = tmp_path / "BENCH_core.json"
        baseline.write_text(json.dumps({"benchmarks": {
            "old": {"wall_s": 1.0},
        }}))
        results = {
            "old": {"wall_s": 1.0},
            "brand_new": {"wall_s": 1e6},  # huge, but first-seen
        }
        assert compare_to_baseline(results, baseline, threshold=0.25) == []

    def test_append_history_grows_one_row_per_run(self, tmp_path):
        from repro.experiments.bench import append_history

        hist = tmp_path / "BENCH_history.jsonl"
        results = {"fast_path": {"wall_s": 0.1, "ops_per_s": 10.0, "speedup": 2.0,
                                 "baseline_wall_s": 0.2}}
        append_history(results, hist, note="first")
        append_history(results, hist, note="second")
        rows = [json.loads(line) for line in hist.read_text().splitlines()]
        assert [r["note"] for r in rows] == ["first", "second"]
        entry = rows[0]["benchmarks"]["fast_path"]
        # headline fields only — raw baselines live in BENCH_core.json
        assert entry == {"wall_s": 0.1, "ops_per_s": 10.0, "speedup": 2.0}
        assert all("ts" in r for r in rows)
