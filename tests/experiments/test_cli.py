"""Tests for the command-line entry point."""

import pytest

from repro.experiments.__main__ import main


def test_fig9_command(capsys):
    rc = main(["fig9"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Fig. 9" in out
    assert "MTMRP:" in out and "ODMRP:" in out
    assert "transmissions" in out


def test_fig10_with_explicit_seed(capsys):
    rc = main(["fig10", "--seed", "1011"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "MTMRP: 16 transmissions" in out  # the paper-caption round


def test_fig5_tiny(capsys, monkeypatch):
    # shrink the sweep so the CLI test stays fast
    from repro.experiments import figures

    monkeypatch.setattr(figures, "GROUP_SIZES", (10,))
    rc = main(["fig5", "--runs", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Normalized transmission overhead" in out
    assert "Average relay profit" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])
