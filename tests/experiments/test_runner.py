"""Tests for the Monte-Carlo runner."""

import copy

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import (
    RunError,
    RunResult,
    aggregate,
    config_hash,
    monte_carlo,
    run_many,
    run_single,
)

FAST = dict(topology="grid", group_size=10, mac="ideal")


class TestRunSingle:
    def test_deterministic_given_seed(self):
        cfg = SimulationConfig(protocol="mtmrp", seed=5, **FAST)
        a = run_single(cfg)
        b = run_single(cfg)
        assert a == b

    def test_seed_changes_receiver_draw(self):
        a = run_single(SimulationConfig(protocol="mtmrp", seed=1, **FAST))
        b = run_single(SimulationConfig(protocol="mtmrp", seed=2, **FAST))
        assert a.receivers != b.receivers

    def test_result_fields_sane(self):
        r = run_single(SimulationConfig(protocol="mtmrp", seed=3, **FAST))
        assert r.protocol == "mtmrp"
        assert r.group_size == 10 == len(r.receivers)
        assert 0 < r.data_transmissions <= 100
        assert r.delivery_ratio == 1.0  # ideal MAC + perfect channel
        assert r.extra_nodes >= 0
        assert r.join_query_tx == 100
        assert r.energy_joules > 0
        assert r.positions is None

    def test_keep_positions(self):
        r = run_single(SimulationConfig(protocol="mtmrp", seed=3, **FAST), keep_positions=True)
        assert r.positions is not None and r.positions.shape == (100, 2)

    def test_flooding_protocol(self):
        r = run_single(SimulationConfig(protocol="flooding", seed=3, **FAST))
        assert r.data_transmissions == 100
        assert r.delivery_ratio == 1.0

    def test_hello_phase_mode(self):
        cfg = SimulationConfig(protocol="mtmrp", seed=4, hello_phase=True, **FAST)
        r = run_single(cfg)
        assert r.hello_tx > 0
        assert r.delivery_ratio == 1.0

    def test_source_never_a_receiver(self):
        for seed in range(5):
            r = run_single(SimulationConfig(protocol="odmrp", seed=seed, **FAST))
            assert 0 not in r.receivers


class TestMonteCarlo:
    def test_expansion_deterministic(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        a = [c.seed for c in monte_carlo(cfg, 10, batch_seed=7)]
        b = [c.seed for c in monte_carlo(cfg, 10, batch_seed=7)]
        assert a == b
        assert len(set(a)) == 10

    def test_run_many_serial(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        results = run_many(monte_carlo(cfg, 4, batch_seed=1))
        assert len(results) == 4
        assert all(isinstance(r, RunResult) for r in results)

    def test_run_many_parallel_matches_serial(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        cfgs = monte_carlo(cfg, 4, batch_seed=1)
        serial = run_many(cfgs, workers=1)
        parallel = run_many(cfgs, workers=2)
        assert serial == parallel


class TestRunManyStreaming:
    def test_progress_fires_per_completion_in_order(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        seen = []
        results = run_many(
            monte_carlo(cfg, 3, batch_seed=4),
            progress=lambda done, total, r: seen.append((done, total, r.seed)),
        )
        assert [d for d, _t, _s in seen] == [1, 2, 3]
        assert all(t == 3 for _d, t, _s in seen)
        assert [s for _d, _t, s in seen] == [r.seed for r in results]

    def test_parallel_results_keep_config_order(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        cfgs = monte_carlo(cfg, 4, batch_seed=3)
        results = run_many(cfgs, workers=2)
        assert [r.seed for r in results] == [c.seed for c in cfgs]


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cfg = SimulationConfig(protocol="mtmrp", seed=6, **FAST)
        cold = run_single(cfg, cache=tmp_path)
        cached_files = list(tmp_path.glob("*.json"))
        assert len(cached_files) == 1
        warm = run_single(cfg, cache=tmp_path)
        assert warm == cold

    def test_cache_hit_skips_execution(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        cfg = SimulationConfig(protocol="mtmrp", seed=6, **FAST)
        run_single(cfg, cache=tmp_path)

        def boom(*a, **k):  # a second run must come from disk
            raise AssertionError("cache miss: _execute_run was called")

        monkeypatch.setattr(runner_mod, "_execute_run", boom)
        assert run_single(cfg, cache=tmp_path) is not None

    def test_different_configs_do_not_collide(self, tmp_path):
        a = run_single(SimulationConfig(protocol="mtmrp", seed=6, **FAST), cache=tmp_path)
        b = run_single(SimulationConfig(protocol="mtmrp", seed=7, **FAST), cache=tmp_path)
        assert a != b
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_trace_requests_bypass_the_cache(self, tmp_path):
        from repro.sim.trace import TraceRecorder

        cfg = SimulationConfig(protocol="mtmrp", seed=6, **FAST)
        run_single(cfg, cache=tmp_path)
        tr = TraceRecorder()
        run_single(cfg, cache=tmp_path, trace=tr)
        assert len(tr) > 0  # a cache hit could never fill the recorder


class TestAggregate:
    def test_mean_std_sem(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        results = run_many(monte_carlo(cfg, 5, batch_seed=2))
        agg = aggregate(results, "data_transmissions")
        vals = [r.data_transmissions for r in results]
        assert agg["mean"] == pytest.approx(np.mean(vals))
        assert agg["std"] == pytest.approx(np.std(vals, ddof=1))
        assert agg["n"] == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate([], "data_transmissions")

    def test_unknown_metric_names_the_alternatives(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        results = run_many(monte_carlo(cfg, 2, batch_seed=2))
        with pytest.raises(ValueError, match="delivery_ratio"):
            aggregate(results, "no_such_metric")

    def test_single_run_has_zero_spread(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        results = run_many(monte_carlo(cfg, 1, batch_seed=2))
        agg = aggregate(results, "data_transmissions")
        assert agg["std"] == 0.0 == agg["sem"]


def _poison(cfg):
    """A config that passes validation but explodes inside the run.

    The config layer rejects bad values at construction, so runtime
    failures (simulator bugs, corrupted checkpoints) are emulated by
    bypassing ``__post_init__`` — pickle round-trips preserve the field,
    so the failure reproduces identically inside worker processes.
    """
    bad = copy.copy(cfg)
    object.__setattr__(bad, "group_size", 10_000)  # > n_nodes
    return bad


class TestFailureIsolation:
    def test_run_error_names_the_failing_run(self):
        good = monte_carlo(SimulationConfig(protocol="mtmrp", **FAST), 2, 7)
        bad = _poison(good[1])
        with pytest.raises(RunError) as exc_info:
            run_many([good[0], bad])
        err = exc_info.value
        assert err.index == 1
        assert err.config == bad
        assert err.seed == bad.seed
        assert err.config_hash == config_hash(bad)
        assert "ValueError" in str(err)

    def test_collect_mode_keeps_the_campaign_running(self):
        cfgs = monte_carlo(SimulationConfig(protocol="mtmrp", **FAST), 3, 7)
        cfgs[1] = _poison(cfgs[1])
        results = run_many(cfgs, on_error="collect")
        assert isinstance(results[0], RunResult)
        assert isinstance(results[1], RunError) and results[1].index == 1
        assert isinstance(results[2], RunResult)

    def test_collect_mode_parallel_keeps_worker_traceback(self):
        cfgs = monte_carlo(SimulationConfig(protocol="mtmrp", **FAST), 4, 7)
        cfgs[2] = _poison(cfgs[2])
        results = run_many(cfgs, workers=2, on_error="collect")
        err = results[2]
        assert isinstance(err, RunError)
        assert err.worker_traceback and "Traceback" in err.worker_traceback
        # the healthy runs around the failure are untouched
        serial = run_many([c for i, c in enumerate(cfgs) if i != 2])
        assert [r for i, r in enumerate(results) if i != 2] == serial

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_many([], on_error="ignore")


class TestOnResult:
    def test_reports_config_identity_not_completion_order(self):
        cfgs = monte_carlo(SimulationConfig(protocol="mtmrp", **FAST), 5, 11)
        seen = {}
        results = run_many(cfgs, workers=2, on_result=lambda i, r: seen.setdefault(i, r))
        assert sorted(seen) == list(range(5))
        assert [seen[i] for i in range(5)] == results


class TestWarmRunMany:
    def test_warm_matches_cold_serial_and_parallel(self):
        base = SimulationConfig(
            protocol="mtmrp", topology="grid", group_size=10, mac="csma",
            hello_phase=True, hello_warmup=1.0, data_time=0.5,
        )
        cfgs = [base.with_(backoff_w=w) for w in (0.001, 0.01)]
        cfgs += [c.with_(protocol="odmrp") for c in cfgs]
        cold = run_many(cfgs)
        assert run_many(cfgs, warm=True) == cold
        assert run_many(cfgs, warm="always") == cold
        assert run_many(cfgs, workers=2, warm=True) == cold


class TestAggregatePercentiles:
    def test_p50_p95(self):
        results = [
            RunResult(
                protocol="mtmrp", topology="grid", group_size=10, seed=i,
                backoff_n=4.0, backoff_w=0.001,
                data_transmissions=i, tree_transmissions=0, extra_nodes=0,
                average_relay_profit=0.0, delivered=0, delivery_ratio=1.0,
                covered_receivers=0, join_query_tx=0, join_reply_tx=0,
                hello_tx=0, collisions=0, energy_joules=0.0,
            )
            for i in range(1, 101)
        ]
        agg = aggregate(results, "data_transmissions")
        assert agg["p50"] == pytest.approx(50.5)
        assert agg["p95"] == pytest.approx(95.05)
        assert agg["n"] == 100
        assert set(agg) == {"mean", "std", "sem", "p50", "p95", "n"}

    def test_single_replicate_percentiles_are_nan_with_warning(self):
        """A percentile of one sample is not an estimate; the key set is
        kept intact so downstream tables never lose their columns."""
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        results = run_many(monte_carlo(cfg, 1, batch_seed=2))
        with pytest.warns(UserWarning, match="percentile"):
            agg = aggregate(results, "data_transmissions")
        assert set(agg) == {"mean", "std", "sem", "p50", "p95", "n"}
        assert np.isnan(agg["p50"]) and np.isnan(agg["p95"])
        assert agg["n"] == 1
        assert agg["mean"] == results[0].data_transmissions

    def test_two_replicates_give_finite_percentiles(self):
        cfg = SimulationConfig(protocol="odmrp", **FAST)
        results = run_many(monte_carlo(cfg, 2, batch_seed=2))
        agg = aggregate(results, "data_transmissions")
        assert np.isfinite(agg["p50"]) and np.isfinite(agg["p95"])


class TestOnSample:
    def test_serial_streams_windows_per_run(self):
        from repro.obs import Sample

        cfg = SimulationConfig(protocol="mtmrp", **FAST)
        cfgs = monte_carlo(cfg, 3, batch_seed=5)
        rows = []
        results = run_many(cfgs, on_sample=lambda i, s: rows.append((i, s)))
        assert len(results) == 3
        assert sorted({i for i, _s in rows}) == [0, 1, 2]
        assert all(isinstance(s, Sample) for _i, s in rows)
        # within a run, windows arrive in time order
        for k in range(3):
            times = [s.time for i, s in rows if i == k]
            assert times == sorted(times) and len(times) > 0

    def test_parallel_delivers_same_samples_and_results(self):
        cfg = SimulationConfig(protocol="mtmrp", **FAST)
        cfgs = monte_carlo(cfg, 4, batch_seed=5)
        serial_rows, parallel_rows = [], []
        serial = run_many(cfgs, on_sample=lambda i, s: serial_rows.append((i, s)))
        parallel = run_many(
            cfgs, workers=2, on_sample=lambda i, s: parallel_rows.append((i, s))
        )
        assert serial == parallel
        # same per-run sample series regardless of execution mode
        by_run = lambda rows, k: [s for i, s in rows if i == k]  # noqa: E731
        for k in range(4):
            assert by_run(serial_rows, k) == by_run(parallel_rows, k)

    def test_sampled_results_match_unsampled(self):
        """Attaching the per-run observers never changes the results."""
        cfg = SimulationConfig(protocol="mtmrp", **FAST)
        cfgs = monte_carlo(cfg, 2, batch_seed=5)
        plain = run_many(cfgs)
        sampled = run_many(cfgs, on_sample=lambda i, s: None)
        assert plain == sampled

    def test_sample_window_is_respected(self):
        cfg = SimulationConfig(protocol="mtmrp", **FAST)
        rows = []
        run_many(
            monte_carlo(cfg, 1, batch_seed=5),
            on_sample=lambda i, s: rows.append(s.time),
            sample_window=0.5,
        )
        assert rows[0] == pytest.approx(0.5)
        # regular 0.5 s cadence; the final row is the end-of-run flush
        # from Observer.finish() and may close a partial window
        steps = [b - a for a, b in zip(rows, rows[1:-1])]
        assert all(step == pytest.approx(0.5) for step in steps)
        assert rows[-1] >= rows[-2]


class TestCollectOrderingContract:
    """Pin run_many's index-keyed ordering contract (see its docstring).

    The campaign service's checkpoint/re-queue recovery is only sound if
    every execution path returns exactly ``len(configs)`` slots in input
    order, leaves collect-mode RunErrors in-place with ``.index`` equal
    to their position, and reports run identity (not completion order)
    through ``on_result``.  Exercised with failures scattered through the
    campaign on all three paths: serial, the worker pool with
    single-config chunks, and the vectorized batch kernel.
    """

    def _mixed(self):
        cfgs = monte_carlo(SimulationConfig(protocol="mtmrp", **FAST), 6, 7)
        bad_at = (1, 4)
        for i in bad_at:
            cfgs[i] = _poison(cfgs[i])
        return cfgs, bad_at

    def _check(self, cfgs, bad_at, results, seen):
        assert len(results) == len(cfgs)
        for i, res in enumerate(results):
            if i in bad_at:
                assert isinstance(res, RunError) and res.index == i
                assert res.config_hash == config_hash(cfgs[i])
            else:
                assert isinstance(res, RunResult)
                assert res.seed == cfgs[i].seed
        # on_result reported every slot exactly once, keyed by identity
        assert sorted(seen) == list(range(len(cfgs)))
        assert all(seen[i] is results[i] for i in seen)

    def test_serial_path(self):
        cfgs, bad_at = self._mixed()
        seen = {}
        results = run_many(
            cfgs, on_error="collect", on_result=lambda i, r: seen.setdefault(i, r)
        )
        self._check(cfgs, bad_at, results, seen)

    def test_pool_path_single_config_chunks(self):
        cfgs, bad_at = self._mixed()
        seen = {}
        results = run_many(
            cfgs, workers=2, chunk_size=1, on_error="collect",
            on_result=lambda i, r: seen.setdefault(i, r),
        )
        self._check(cfgs, bad_at, results, seen)

    def test_batch_kernel_path(self):
        cfgs, bad_at = self._mixed()
        seen = {}
        results = run_many(
            cfgs, batch=8, on_error="collect",
            on_result=lambda i, r: seen.setdefault(i, r),
        )
        self._check(cfgs, bad_at, results, seen)

    def test_paths_agree_on_successes(self):
        cfgs, bad_at = self._mixed()
        serial = run_many(cfgs, on_error="collect")
        pool = run_many(cfgs, workers=2, chunk_size=1, on_error="collect")
        batch = run_many(cfgs, batch=8, on_error="collect")
        for i in range(len(cfgs)):
            if i not in bad_at:
                assert serial[i] == pool[i] == batch[i]
