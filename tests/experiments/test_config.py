"""Tests for experiment configuration."""

import numpy as np
import pytest

from repro.experiments.config import (
    PROTOCOLS,
    SimulationConfig,
    make_agent_factory,
    make_positions,
)


class TestValidation:
    def test_defaults_match_paper(self):
        cfg = SimulationConfig()
        assert cfg.side == 200.0
        assert cfg.comm_range == 40.0
        assert cfg.backoff_n == 4.0
        assert cfg.backoff_w == 0.001
        assert cfg.grid_nx == cfg.grid_ny == 10
        assert cfg.random_nodes == 200
        assert cfg.source == 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(protocol="aodv")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(topology="torus")

    def test_group_size_bounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(group_size=0)
        with pytest.raises(ValueError):
            SimulationConfig(topology="grid", group_size=100)
        SimulationConfig(topology="grid", group_size=99)  # ok

    def test_n_nodes(self):
        assert SimulationConfig(topology="grid").n_nodes == 100
        assert SimulationConfig(topology="random").n_nodes == 200

    def test_scaled_keeps_paper_density(self):
        cfg = SimulationConfig.scaled(800)
        assert cfg.topology == "random"
        assert cfg.random_nodes == 800
        # 200 nodes / (200 m)^2 = 5e-3 nodes/m^2, preserved at any n
        assert 800 / cfg.side**2 == pytest.approx(200 / 200.0**2)
        assert cfg.n_nodes == 800

    def test_scaled_accepts_overrides(self):
        cfg = SimulationConfig.scaled(400, protocol="odmrp", group_size=30)
        assert cfg.protocol == "odmrp"
        assert cfg.group_size == 30
        assert cfg.random_nodes == 400

    def test_scaled_rejects_tiny_deployments(self):
        with pytest.raises(ValueError):
            SimulationConfig.scaled(1)

    def test_with_functional_update(self):
        cfg = SimulationConfig()
        cfg2 = cfg.with_(group_size=30)
        assert cfg.group_size == 20 and cfg2.group_size == 30

    def test_labels(self):
        assert SimulationConfig(protocol="mtmrp").label == "MTMRP"
        assert SimulationConfig(protocol="mtmrp_nophs").label == "MTMRP w/o PHS"

    def test_protocols_tuple(self):
        assert PROTOCOLS == ("mtmrp", "mtmrp_nophs", "dodmrp", "odmrp")


class TestConstructionTime:
    def test_fixed_override(self):
        cfg = SimulationConfig(construction_time=5.5)
        assert cfg.effective_construction_time == 5.5

    def test_auto_scales_with_backoff(self):
        slow = SimulationConfig(backoff_n=6.0, backoff_w=0.03)
        fast = SimulationConfig(backoff_n=4.0, backoff_w=0.001)
        assert slow.effective_construction_time > fast.effective_construction_time
        assert fast.effective_construction_time == 2.0  # floor

    def test_baselines_fixed(self):
        assert SimulationConfig(protocol="odmrp").effective_construction_time == 2.0


class TestFactories:
    def test_positions_grid_deterministic(self):
        cfg = SimulationConfig(topology="grid")
        a = make_positions(cfg, np.random.default_rng(1))
        b = make_positions(cfg, np.random.default_rng(99))
        assert np.array_equal(a, b)

    def test_positions_random_seeded(self):
        cfg = SimulationConfig(topology="random")
        a = make_positions(cfg, np.random.default_rng(7))
        b = make_positions(cfg, np.random.default_rng(7))
        assert np.array_equal(a, b)
        assert a.shape == (200, 2)

    def test_agent_factories(self):
        from repro.core.mtmrp import MtmrpAgent
        from repro.net.flooding import FloodingAgent
        from repro.protocols.dodmrp import DodmrpAgent
        from repro.protocols.odmrp import OdmrpAgent

        cases = {
            "mtmrp": MtmrpAgent,
            "mtmrp_nophs": MtmrpAgent,
            "dodmrp": DodmrpAgent,
            "odmrp": OdmrpAgent,
            "flooding": FloodingAgent,
        }
        for proto, cls in cases.items():
            cfg = SimulationConfig(protocol=proto)
            agent = make_agent_factory(cfg)(None)
            assert isinstance(agent, cls)
        assert make_agent_factory(SimulationConfig(protocol="mtmrp"))(None).phs is True
        assert make_agent_factory(SimulationConfig(protocol="mtmrp_nophs"))(None).phs is False

    def test_backoff_params_threaded_through(self):
        cfg = SimulationConfig(protocol="mtmrp", backoff_n=6.0, backoff_w=0.02)
        agent = make_agent_factory(cfg)(None)
        assert agent.backoff.params.n == 6.0
        assert agent.backoff.params.w == 0.02
