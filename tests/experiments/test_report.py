"""Tests for report rendering."""

from repro.experiments import figures
from repro.experiments.report import (
    format_series_chart,
    format_series_table,
    format_snapshots,
    format_tuning_surfaces,
)


def _mini_sweep():
    return figures.fig5(runs=1, group_sizes=(5, 10), protocols=("odmrp", "mtmrp"))


def test_series_table_contains_labels_and_values():
    out = format_series_table(_mini_sweep(), "data_transmissions", title="T")
    assert out.startswith("T")
    assert "ODMRP" in out and "MTMRP" in out
    assert "5" in out and "10" in out


def test_series_chart_renders():
    out = format_series_chart(_mini_sweep(), "data_transmissions")
    assert "o=MTMRP" in out or "o=ODMRP" in out
    assert "|" in out


def test_tuning_surfaces_render():
    sweep = figures.fig7(runs=1, ns=(3.0, 4.0), ws=(0.001, 0.01), protocols=("mtmrp",))
    out = format_tuning_surfaces(sweep)
    assert "MTMRP" in out
    assert "N\\w" in out


def test_snapshots_render_with_captions():
    snaps = figures.fig9(seed=2, protocols=("odmrp",))
    out = format_snapshots(snaps)
    assert "ODMRP:" in out
    assert "transmissions" in out
    assert "S=source" in out
