"""Chaos-soak campaign tests, including the headline acceptance claim:

under an *identical* churn schedule, MTMRP with local repair achieves a
strictly higher windowed delivery ratio AND strictly fewer source
JoinQuery rebuild rounds than the rebuild-only baseline — and both arms
replay bit-for-bit.
"""

import numpy as np
import pytest

from repro.experiments.chaos import (
    build_churn_plan,
    chaos_sweep,
    run_chaos_single,
)
from repro.experiments.config import SimulationConfig, make_positions
from repro.protocols.repair import RepairPolicy
from repro.sim.kernel import Simulator

#: the acceptance workload: data fast enough (20 pps) that the healing
#: gap between a 2-hop graft and a RouteError-flood rebuild is measurable
ACCEPTANCE_KWARGS = dict(
    n_packets=240, rate_pps=20.0, refresh_interval=8.0,
    n_cycles=2, down_time=5.0, window=2.0,
)

#: fast knobs for the structural tests
FAST_KWARGS = dict(
    n_packets=40, rate_pps=10.0, refresh_interval=5.0,
    n_cycles=1, down_time=4.0, window=2.0,
)


def grid_cfg(protocol="mtmrp", seed=90215):
    return SimulationConfig(
        protocol=protocol, topology="grid", grid_nx=5, grid_ny=5, side=120.0,
        group_size=6, mac="ideal", hello_phase=True, seed=seed,
    )


class TestChurnPlan:
    def _plan(self, seed=90215):
        cfg = grid_cfg(seed=seed)
        sim = Simulator(seed=cfg.seed)
        positions = make_positions(cfg, sim.rng.stream("topology"))
        receivers = [6, 12, 18, 23]
        return cfg, receivers, build_churn_plan(
            cfg, positions, receivers, window=(5.0, 15.0),
            n_cycles=3, down_time=2.0,
        )

    def test_plan_is_deterministic(self):
        _, _, a = self._plan()
        _, _, b = self._plan()
        assert a.to_dicts() == b.to_dicts()

    def test_victims_spare_source_and_receivers(self):
        cfg, receivers, plan = self._plan()
        victims = {e.node for e in plan.crashes()}
        assert cfg.source not in victims
        assert not victims & set(receivers)

    def test_every_crash_gets_a_recovery(self):
        _, _, plan = self._plan()
        crashes = [(e.time, e.node) for e in plan.crashes()]
        recovers = [(e.time, e.node) for e in plan.events if e.kind.value == "recover"]
        assert len(crashes) == len(recovers) == 3
        for (tc, nc), (tr, nr) in zip(sorted(crashes), sorted(recovers)):
            assert nr == nc and tr == pytest.approx(tc + 2.0)


class TestAcceptance:
    """The PR's headline claim, pinned to a representative seed."""

    def test_repair_beats_rebuild_only_under_identical_schedule(self):
        cfg = grid_cfg()
        off = run_chaos_single(cfg, policy=None, **ACCEPTANCE_KWARGS)
        on = run_chaos_single(cfg, policy=RepairPolicy(), **ACCEPTANCE_KWARGS)

        # identical fault schedules — the comparison's precondition
        assert off.fault_log == on.fault_log
        assert off.crashes == on.crashes > 0

        # strictly fewer source-side JoinQuery rebuild rounds: the graft
        # absorbed at least one failure the baseline paid a flood for
        assert on.grafts_ok >= 1
        assert on.rebuild_rounds < off.rebuild_rounds
        assert on.route_error_tx < off.route_error_tx

        # strictly higher windowed delivery ratio
        mean_off = float(np.mean([r for _t, r in off.windowed]))
        mean_on = float(np.mean([r for _t, r in on.windowed]))
        assert mean_on > mean_off
        assert on.delivery_ratio > off.delivery_ratio

    def test_both_arms_are_bit_reproducible(self):
        cfg = grid_cfg()
        for policy in (None, RepairPolicy()):
            a = run_chaos_single(cfg, policy=policy, **ACCEPTANCE_KWARGS)
            b = run_chaos_single(cfg, policy=policy, **ACCEPTANCE_KWARGS)
            assert a.trace_sha256 == b.trace_sha256
            assert a.windowed == b.windowed
            assert a.fault_log == b.fault_log


class TestSoak:
    def test_checked_soak_is_violation_free(self):
        r = run_chaos_single(
            grid_cfg(seed=90210), policy=RepairPolicy(), check=True, **FAST_KWARGS
        )
        assert r.violations == ()
        assert r.crashes == 1 and r.recovers == 1

    def test_flag_off_arm_emits_no_repair_traffic(self):
        r = run_chaos_single(grid_cfg(seed=90210), policy=None, **FAST_KWARGS)
        assert r.repair is False
        assert r.grafts_ok == r.grafts_failed == 0
        assert r.repair_query_tx == r.degraded_data_tx == 0
        assert r.time_repairing == r.time_degraded == 0.0

    def test_gmr_runs_through_geographic_branch(self):
        r = run_chaos_single(grid_cfg(protocol="gmr", seed=90210), policy=RepairPolicy(),
                             **FAST_KWARGS)
        assert r.rebuild_rounds == 0  # no JoinQuery machinery at all
        assert r.repair_query_tx == 0
        assert r.delivery_ratio > 0.5


class TestSweep:
    def test_sweep_shape_and_pairing(self):
        out = chaos_sweep(protocols=("mtmrp",), runs=1, batch_seed=90215,
                          **FAST_KWARGS)
        assert set(out) == {"mtmrp"}
        assert set(out["mtmrp"]) == {"off", "on"}
        for arm in ("off", "on"):
            v = out["mtmrp"][arm]
            assert 0.0 <= v["delivery_ratio"] <= 1.0
            assert v["violations"] == 0.0
        assert out["mtmrp"]["off"]["repair_effective"] == 0.0
