"""Harness support for the extension protocols (MAODV, GMR)."""

import numpy as np
import pytest

from repro.experiments import SimulationConfig, monte_carlo, run_many, run_single
from repro.experiments.figures import fig5


def test_maodv_run_single():
    r = run_single(SimulationConfig(protocol="maodv", topology="grid",
                                    group_size=10, mac="ideal", seed=2))
    assert r.delivery_ratio == 1.0
    assert r.join_query_tx == 100  # GroupHello flood
    assert r.data_transmissions > 1


def test_gmr_run_single():
    r = run_single(SimulationConfig(protocol="gmr", topology="grid",
                                    group_size=10, mac="ideal", seed=2))
    assert r.delivery_ratio == 1.0
    assert r.join_query_tx == 0  # stateless: zero route discovery
    assert r.join_reply_tx == 0
    assert r.data_transmissions > 1


def test_gmr_deterministic():
    cfg = SimulationConfig(protocol="gmr", topology="random", group_size=10,
                           mac="ideal", seed=5)
    assert run_single(cfg) == run_single(cfg)


def test_six_protocol_sweep_point():
    """All protocol families run through the same sweep machinery."""
    sweep = fig5(runs=2, group_sizes=(10,),
                 protocols=("mtmrp", "odmrp", "maodv", "gmr"))
    for proto in ("mtmrp", "odmrp", "maodv", "gmr"):
        vals = sweep.series(proto, "data_transmissions")
        assert vals[0] > 0


def test_gmr_control_free_but_costlier_trees():
    """The family trade-off: GMR spends nothing on discovery but its
    per-destination geographic paths converge less than MTMRP's tree."""
    base = dict(topology="grid", group_size=20, mac="ideal")
    mt = run_many(monte_carlo(SimulationConfig(protocol="mtmrp", **base), 6, 55))
    geo = run_many(monte_carlo(SimulationConfig(protocol="gmr", **base), 6, 55))
    mt_tx = float(np.mean([r.data_transmissions for r in mt]))
    geo_tx = float(np.mean([r.data_transmissions for r in geo]))
    mt_ctl = float(np.mean([r.join_query_tx + r.join_reply_tx for r in mt]))
    assert geo_tx > mt_tx
    assert mt_ctl > 0
    assert all(r.join_query_tx == 0 for r in geo)
