"""Tests for the analysis/statistics utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import mean_ci, paired_comparison
from repro.experiments import SimulationConfig, monte_carlo, run_many

FAST = dict(topology="grid", group_size=10, mac="ideal")


class TestMeanCI:
    def test_point_estimate(self):
        out = mean_ci([3.0])
        assert out == {"mean": 3.0, "lo": 3.0, "hi": 3.0, "sem": 0.0, "n": 1}

    def test_interval_contains_mean(self):
        out = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert out["lo"] < out["mean"] < out["hi"]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci([])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=50))
    def test_interval_symmetric_property(self, values):
        out = mean_ci(values)
        assert out["hi"] - out["mean"] == pytest.approx(out["mean"] - out["lo"], abs=1e-9)

    def test_wider_confidence_wider_interval(self):
        vals = [1.0, 5.0, 2.0, 8.0, 3.0]
        w95 = mean_ci(vals, 0.95)
        w99 = mean_ci(vals, 0.99)
        assert (w99["hi"] - w99["lo"]) > (w95["hi"] - w95["lo"])


class TestPairedComparison:
    def _batches(self):
        a = run_many(monte_carlo(SimulationConfig(protocol="mtmrp", **FAST), 8, 77))
        b = run_many(monte_carlo(SimulationConfig(protocol="odmrp", **FAST), 8, 77))
        return a, b

    def test_pairing_enforced(self):
        a, _ = self._batches()
        other = run_many(monte_carlo(SimulationConfig(protocol="odmrp", **FAST), 8, 78))
        with pytest.raises(ValueError):
            paired_comparison(a, other)

    def test_comparison_fields(self):
        a, b = self._batches()
        cmp = paired_comparison(a, b)
        assert cmp.a == "mtmrp" and cmp.b == "odmrp"
        assert cmp.n == 8
        assert 0.0 <= cmp.win_rate <= 1.0
        assert cmp.ci_lo <= cmp.mean_diff <= cmp.ci_hi
        assert 0.0 <= cmp.p_value <= 1.0

    def test_self_comparison_is_null(self):
        a, _ = self._batches()
        cmp = paired_comparison(a, a)
        assert cmp.mean_diff == 0.0
        assert not cmp.significant
        assert cmp.win_rate == 0.0

    def test_length_mismatch_raises(self):
        a, b = self._batches()
        with pytest.raises(ValueError):
            paired_comparison(a, b[:-1])
