"""Fault-path coverage: loss-chain transitions, crash timing, duty cycles.

Satellite coverage for the paths the headline fault tests skip over:
the Gilbert-Elliott chain's *state machine* (not just its statistics),
a FaultInjector crash landing mid route-discovery, and a duty-cycle
sleep window swallowing a JoinQuery rebroadcast that was already queued
at the MAC (suppressed frame, not a silent no-op).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig, make_agent_factory
from repro.faults import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.loss import GilbertElliott
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind

from tests.conftest import make_grid_network


class TestGilbertElliottTransitions:
    def test_forced_alternation_is_deterministic(self):
        # p_good_bad = p_bad_good = 1 flips state after every frame;
        # starting Good with loss_good=0 / loss_bad=1 the outcome sequence
        # is exactly False, True, False, True, ... independent of the rng
        model = GilbertElliott(
            p_good_bad=1.0, p_bad_good=1.0, rng=np.random.default_rng(0)
        )
        outcomes = [model.frame_lost(0, 1) for _ in range(8)]
        assert outcomes == [False, True, False, True, False, True, False, True]

    def test_chain_pinned_to_good_never_loses(self):
        model = GilbertElliott(
            p_good_bad=0.0, p_bad_good=0.5, rng=np.random.default_rng(1)
        )
        assert not any(model.frame_lost(0, 1) for _ in range(1000))
        assert model._bad[(0, 1)] is False  # state tracked, never flipped
        assert model.expected_loss() == 0.0

    def test_absorbing_bad_state(self):
        model = GilbertElliott(
            p_good_bad=1.0, p_bad_good=0.0, rng=np.random.default_rng(2)
        )
        first = model.frame_lost(0, 1)  # still Good on the first frame
        assert first is False
        assert all(model.frame_lost(0, 1) for _ in range(100))
        assert model.mean_burst_frames() == float("inf")

    def test_identical_seed_identical_trajectory(self):
        kw = dict(p_good_bad=0.1, p_bad_good=0.3)
        a = GilbertElliott(rng=np.random.default_rng(42), **kw)
        b = GilbertElliott(rng=np.random.default_rng(42), **kw)
        seq_a = [a.frame_lost(2, 5) for _ in range(500)]
        seq_b = [b.frame_lost(2, 5) for _ in range(500)]
        assert seq_a == seq_b
        assert a._bad == b._bad

    def test_state_draws_are_aligned_across_outcomes(self):
        # the model burns exactly two draws per frame, so interleaving a
        # second link does not perturb the first link's trajectory
        kw = dict(p_good_bad=0.1, p_bad_good=0.3)
        solo = GilbertElliott(rng=np.random.default_rng(9), **kw)
        duo = GilbertElliott(rng=np.random.default_rng(9), **kw)
        seq_solo = [solo.frame_lost(0, 1) for _ in range(100)]
        seq_duo = []
        for _ in range(100):
            seq_duo.append(duo.frame_lost(0, 1))
            duo.frame_lost(3, 4)  # consumes its own two draws
        # trajectories diverge (different rng positions) yet both stay
        # valid chains; the *first* outcome, pre-divergence, agrees
        assert seq_solo[0] == seq_duo[0]

    def test_frozen_chain_expected_loss(self):
        model = GilbertElliott(
            p_good_bad=0.0, p_bad_good=0.0, loss_good=0.25,
            rng=np.random.default_rng(3),
        )
        assert model.expected_loss() == 0.25  # denom-zero branch


def _mtmrp_round(seed=5, plan=None, until=4.0):
    """Grid mtmrp route discovery (+ optional fault plan); returns net parts."""
    sim = Simulator(seed=seed)
    net = make_grid_network(sim, nx=4, ny=4, side=90, mac="csma", perfect=False)
    receivers = [15, 12, 3]
    net.set_group_members(1, receivers)
    net.bootstrap_neighbor_tables()
    cfg = SimulationConfig(
        protocol="mtmrp", topology="grid", grid_nx=4, grid_ny=4,
        side=90.0, group_size=3,
    )
    agents = net.install(make_agent_factory(cfg))
    net.start()
    injector = None
    if plan is not None:
        injector = FaultInjector(net, plan=plan).arm()
    agents[0].request_route(1)
    sim.run(until=until)
    agents[0].send_data(1, 0)
    sim.run(until=until + 1.0)
    return sim, net, agents, injector


class TestCrashDuringRouteDiscovery:
    VICTIM = 5
    CRASH_T = 0.004  # mid JoinQuery flood (first hops are ~ms apart)

    def test_victim_goes_silent_at_crash_time(self):
        plan = FaultPlan().crash(self.CRASH_T, self.VICTIM)
        sim, net, agents, injector = _mtmrp_round(plan=plan)
        assert self.VICTIM in injector.crashed
        tx_after = [
            r for r in sim.trace.filter(kind=TraceKind.TX, node=self.VICTIM)
            if r.time >= self.CRASH_T
        ]
        assert tx_after == [], "crashed node kept transmitting"
        notes = [
            r for r in sim.trace.filter(kind=TraceKind.NOTE, node=self.VICTIM)
            if r.packet_type == "Fault"
        ]
        assert notes and notes[0].detail[0] == "crash"

    def test_route_forms_around_the_crater(self):
        plan = FaultPlan().crash(self.CRASH_T, self.VICTIM)
        sim, net, agents, injector = _mtmrp_round(plan=plan)
        delivered = sim.trace.nodes_with(TraceKind.DELIVER)
        # the 4x4 grid is 2-connected around node 5: everyone still served
        assert delivered >= {15, 12, 3}

    def test_crash_then_recover_rejoins(self):
        plan = FaultPlan().crash(self.CRASH_T, self.VICTIM).recover(1.0, self.VICTIM)
        sim, net, agents, injector = _mtmrp_round(plan=plan)
        assert self.VICTIM not in injector.crashed
        assert net.node(self.VICTIM).alive


class TestDutyCycleSleepDuringBackoff:
    def test_sleep_overlapping_join_query_backoff_suppresses_frame(self):
        # pass 1 (fault-free): learn when the victim's JoinQuery actually
        # airs; the CSMA backoff queued it well before that instant
        sim, net, _, _ = _mtmrp_round(seed=5)
        forwards = [
            r for r in sim.trace.filter(kind=TraceKind.TX)
            if r.packet_type == "JoinQuery" and r.node != 0
        ]
        assert forwards, "no node forwarded a JoinQuery in the clean run"
        victim, t_tx = forwards[0].node, forwards[0].time
        base_suppressed = net.channel.frames_suppressed

        # pass 2: same seed, but the victim dozes off inside the DIFS gap
        # between the MAC accepting the frame (Node.send checks is_active
        # at enqueue time) and the access timer firing -- the queued frame
        # must be suppressed at the channel, not aired
        eps = 25e-6  # < DIFS (50 us), so the frame is already queued
        plan = FaultPlan().sleep(victim, t_tx - eps, 0.5)
        sim2, net2, _, _ = _mtmrp_round(seed=5, plan=plan)
        assert net2.channel.frames_suppressed > base_suppressed
        asleep_tx = [
            r for r in sim2.trace.filter(kind=TraceKind.TX, node=victim)
            if t_tx - eps <= r.time < t_tx - eps + 0.5
        ]
        assert asleep_tx == [], "sleeping node transmitted during its window"

    def test_duty_cycle_plan_expands_to_sleep_wake_pairs(self):
        plan = FaultPlan().duty_cycle(3, period=1.0, active_fraction=0.6, start=0.0, end=3.0)
        events = plan.to_dicts()
        kinds = [e["kind"] for e in events]
        assert kinds.count("sleep") == 3 and kinds.count("wake") == 3
        with pytest.raises(ValueError):
            FaultPlan().duty_cycle(3, period=1.0, active_fraction=0.0, end=1.0)
