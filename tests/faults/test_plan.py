"""FaultPlan: builders, generated plans, validation, serialisation."""

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan


def test_builders_chain_and_sort():
    plan = FaultPlan().crash(5.0, 3).recover(9.0, 3).crash(1.0, 7)
    assert len(plan) == 3
    assert [(e.time, e.node, e.kind) for e in plan.events] == [
        (1.0, 7, FaultKind.CRASH),
        (5.0, 3, FaultKind.CRASH),
        (9.0, 3, FaultKind.RECOVER),
    ]
    assert [e.node for e in plan.crashes()] == [7, 3]


def test_sleep_adds_paired_window():
    plan = FaultPlan().sleep(4, start=2.0, duration=1.5)
    assert [(e.time, e.kind) for e in plan.events] == [
        (2.0, FaultKind.SLEEP),
        (3.5, FaultKind.WAKE),
    ]
    with pytest.raises(ValueError):
        FaultPlan().sleep(4, start=2.0, duration=0.0)


def test_duty_cycle_windows():
    plan = FaultPlan().duty_cycle(2, period=1.0, active_fraction=0.6, start=0.0, end=2.0)
    evs = plan.events
    sleeps = [e.time for e in evs if e.kind is FaultKind.SLEEP]
    wakes = [e.time for e in evs if e.kind is FaultKind.WAKE]
    assert sleeps == pytest.approx([0.6, 1.6])
    assert wakes == pytest.approx([1.0, 2.0])
    # always-on duty cycle schedules nothing
    assert len(FaultPlan().duty_cycle(2, 1.0, 1.0, 0.0, 2.0)) == 0
    with pytest.raises(ValueError):
        FaultPlan().duty_cycle(2, 1.0, 0.0, 0.0, 2.0)
    with pytest.raises(ValueError):
        FaultPlan().duty_cycle(2, 1.0, 0.5, 2.0, 1.0)


def test_random_crashes_deterministic_and_distinct():
    mk = lambda: FaultPlan.random_crashes(
        np.random.default_rng(42), range(1, 50), n_crashes=5,
        window=(1.0, 3.0), recover_after=0.5,
    )
    p1, p2 = mk(), mk()
    assert p1.to_dicts() == p2.to_dicts()
    crashes = p1.crashes()
    assert len(crashes) == 5
    assert len({e.node for e in crashes}) == 5
    assert all(1.0 <= e.time <= 3.0 for e in crashes)
    recovers = [e for e in p1.events if e.kind is FaultKind.RECOVER]
    by_node = {e.node: e.time for e in recovers}
    assert all(by_node[e.node] == pytest.approx(e.time + 0.5) for e in crashes)


def test_random_crashes_rejects_oversubscription():
    with pytest.raises(ValueError):
        FaultPlan.random_crashes(np.random.default_rng(0), [1, 2], 3, (0.0, 1.0))
    with pytest.raises(ValueError):
        FaultPlan.random_crashes(np.random.default_rng(0), [1, 2], 1, (2.0, 1.0))


def test_validate():
    FaultPlan().crash(1.0, 4).validate(5)
    with pytest.raises(ValueError):
        FaultPlan().crash(1.0, 5).validate(5)
    with pytest.raises(ValueError):
        FaultPlan().crash(-1.0, 0).validate(5)


def test_serialisation_roundtrip():
    plan = FaultPlan().crash(1.0, 2).sleep(3, 2.0, 0.5).recover(4.0, 2)
    again = FaultPlan.from_dicts(plan.to_dicts())
    assert again.to_dicts() == plan.to_dicts()
    assert FaultEvent.from_dict({"time": 1, "node": 2, "kind": "crash"}) == FaultEvent(
        1.0, 2, FaultKind.CRASH
    )
