"""FaultInjector: applying plans, energy depletion, targeted crashes."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.protocols.odmrp import OdmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import build, forwarders_of, line_positions, run_round


def _deployment(n=5, receivers=(4,), seed=1):
    return build(line_positions(n), 25.0, list(receivers), OdmrpAgent, seed=seed)


def test_plan_events_flip_node_flags():
    sim, net, _agents = _deployment()
    plan = (
        FaultPlan()
        .crash(1.0, 2)
        .recover(3.0, 2)
        .sleep(3, start=1.5, duration=1.0)
    )
    inj = FaultInjector(net, plan).arm()

    sim.run(until=1.2)
    assert not net.node(2).alive and inj.crashed == {2}
    sim.run(until=2.0)
    assert net.node(3).asleep and not net.node(3).is_active
    sim.run(until=4.0)
    assert net.node(2).alive and not net.node(3).asleep
    assert inj.crashed == set()

    assert inj.log == [
        (1.0, 2, "crash", "plan"),
        (1.5, 3, "sleep", "plan"),
        (2.5, 3, "wake", "plan"),
        (3.0, 2, "recover", "plan"),
    ]
    assert inj.crash_times() == [(1.0, 2)]
    assert inj.first_crash_time() == 1.0


def test_redundant_events_are_skipped():
    sim, net, _agents = _deployment()
    plan = FaultPlan().crash(1.0, 2).crash(2.0, 2).recover(3.0, 2).recover(4.0, 2)
    inj = FaultInjector(net, plan).arm()
    sim.run(until=5.0)
    # the second crash and second recover were no-ops: not logged
    assert [entry[2] for entry in inj.log] == ["crash", "recover"]


def test_faults_emit_note_trace_records():
    sim, net, _agents = _deployment()
    FaultInjector(net, FaultPlan().crash(1.0, 2)).arm()
    sim.run(until=2.0)
    notes = list(sim.trace.filter(kind=TraceKind.NOTE, packet_type="Fault"))
    assert len(notes) == 1
    assert notes[0].node == 2 and notes[0].detail == ("crash", "plan")


def test_arm_twice_raises_and_plan_is_validated():
    _sim, net, _agents = _deployment()
    inj = FaultInjector(net)
    inj.arm()
    with pytest.raises(RuntimeError):
        inj.arm()
    with pytest.raises(ValueError):
        FaultInjector(net, FaultPlan().crash(1.0, 99))


def test_energy_budget_kills_node_once():
    sim, net, agents = _deployment()
    inj = FaultInjector(net, energy_budget=1e-4).arm()
    # a route round makes every node spend TX/RX energy well past 0.1 mJ
    run_round(sim, agents)
    assert inj.crashed, "no node depleted its budget"
    for t, node, kind, cause in inj.log:
        assert kind == "crash" and cause == "energy"
    # exactly one crash per depleted node, even though charges continued
    crashed_nodes = [n for _t, n, _k, _c in inj.log]
    assert len(crashed_nodes) == len(set(crashed_nodes))
    for n in inj.crashed:
        assert net.node(n).energy.depleted


def test_dead_node_sends_and_receives_nothing():
    sim, net, agents = _deployment()
    FaultInjector(net, FaultPlan().crash(0.5, 2)).arm()
    sim.run(until=0.6)  # kill the bridge before the route round starts
    run_round(sim, agents, settle=2.0)
    # node 2 is the only bridge in the line: nothing beyond it gets data
    assert 4 not in sim.trace.nodes_with(TraceKind.DELIVER)
    assert not list(sim.trace.filter(kind=TraceKind.TX, node=2))


def test_schedule_forwarder_crash_hits_a_mid_tree_relay():
    sim, net, agents = _deployment(n=5, receivers=(4,))
    run_round(sim, agents)
    before = forwarders_of(agents)
    assert before, "round built no forwarders"

    inj = FaultInjector(net).arm()
    inj.schedule_forwarder_crash(sim.now + 0.1, agents)
    sim.run(until=sim.now + 0.2)
    assert len(inj.crashed) == 1
    victim = next(iter(inj.crashed))
    assert victim in before and victim != 0 and victim != 4
    assert inj.log[0][3] == "forwarder"


def test_schedule_forwarder_crash_noop_without_forwarders():
    sim, net, agents = _deployment()
    inj = FaultInjector(net).arm()
    inj.schedule_forwarder_crash(0.5, agents)
    sim.run(until=1.0)
    assert inj.crashed == set() and inj.log == []
