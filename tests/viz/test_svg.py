"""Tests for the SVG renderers."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz.svg import field_svg, line_chart_svg, save_svg, surface_svg


def _parse(svg: str) -> ET.Element:
    """The output must be well-formed XML."""
    return ET.fromstring(svg)


class TestLineChart:
    def test_well_formed_and_has_series(self):
        svg = line_chart_svg([1, 2, 3], {"A": [1, 2, 3], "B": [3, 2, 1]},
                             title="T", xlabel="x", ylabel="y")
        root = _parse(svg)
        assert root.tag.endswith("svg")
        assert svg.count("<polyline") == 2
        assert "T" in svg and ">x<" in svg

    def test_markers_differ_between_series(self):
        svg = line_chart_svg([1, 2], {"A": [1, 2], "B": [2, 1]})
        assert "<circle" in svg  # series A markers
        assert "<rect" in svg  # series B markers (squares)

    def test_empty_data_safe(self):
        root = _parse(line_chart_svg([], {}))
        assert root.tag.endswith("svg")

    def test_constant_series(self):
        svg = line_chart_svg([1, 2, 3], {"A": [5, 5, 5]})
        _parse(svg)

    def test_legend_labels_escaped(self):
        svg = line_chart_svg([1], {"a<b&c": [1]})
        _parse(svg)  # would raise on unescaped characters
        assert "a&lt;b&amp;c" in svg

    def test_four_series_exhaust_marker_shapes(self):
        series = {name: [i, i + 1] for i, name in enumerate("ABCD")}
        svg = line_chart_svg([1, 2], series)
        _parse(svg)
        # circle, square, diamond, triangle all drawn
        assert "<circle" in svg and "<rect" in svg
        assert svg.count("<polygon") >= 4  # diamonds + triangles (plot + legend)

    def test_palette_and_markers_wrap_past_their_length(self):
        series = {f"s{i}": [i, i + 1] for i in range(7)}  # > len(PALETTE)
        svg = line_chart_svg([1, 2], series)
        _parse(svg)
        assert svg.count("<polyline") == 7
        # series 6 reuses series 0's color
        assert svg.count("#0072B2") >= 2

    def test_single_x_value_does_not_divide_by_zero(self):
        svg = line_chart_svg([5], {"A": [1.0]})
        _parse(svg)
        assert "<polyline" in svg

    def test_ylabel_is_rotated(self):
        svg = line_chart_svg([1, 2], {"A": [1, 2]}, ylabel="joules")
        assert "rotate(-90" in svg and "joules" in svg


class TestTicks:
    def test_ticks_cover_the_range(self):
        from repro.viz.svg import _ticks

        ticks = _ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0 + 1e-9
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform spacing

    def test_degenerate_range_still_yields_ticks(self):
        from repro.viz.svg import _ticks

        assert _ticks(5.0, 5.0)  # hi <= lo is padded internally
        assert _ticks(3.0, 2.0)

    def test_fractional_range(self):
        from repro.viz.svg import _ticks

        ticks = _ticks(0.0, 0.01)
        assert all(0.0 <= t <= 0.01 + 1e-9 for t in ticks)
        assert len(ticks) >= 2


class TestMarkerShapes:
    @pytest.mark.parametrize("shape,tag", [
        ("circle", "<circle"),
        ("square", "<rect"),
        ("diamond", "<polygon"),
        ("triangle", "<polygon"),
    ])
    def test_each_shape_emits_expected_element(self, shape, tag):
        from repro.viz.svg import _marker

        frag = _marker(shape, 10.0, 20.0, "#000")
        assert frag.startswith(tag)
        _parse(frag)  # each fragment is well-formed on its own

    def test_diamond_and_triangle_polygons_differ(self):
        from repro.viz.svg import _marker

        assert _marker("diamond", 5, 5, "#000") != _marker("triangle", 5, 5, "#000")


class TestField:
    def test_well_formed_with_all_roles(self):
        pos = np.array([[0, 0], [50, 50], [100, 100], [150, 150], [25, 75]], float)
        svg = field_svg(pos, 200.0, source=0, receivers=[1, 2], transmitters=[2, 3],
                        title="snap")
        _parse(svg)
        assert "snap" in svg
        # source square + receivers + forwarders present
        assert svg.count("<circle") >= 2

    def test_source_is_square(self):
        pos = np.array([[10, 10]], float)
        svg = field_svg(pos, 100.0, source=0, receivers=[], transmitters=[])
        assert "<rect" in svg

    def test_role_glyphs_are_distinct(self):
        # node 1 = plain, 2 = receiver, 3 = forwarder, 4 = both
        pos = np.array([[0, 0], [10, 10], [20, 20], [30, 30], [40, 40]], float)
        svg = field_svg(pos, 50.0, source=0, receivers=[2, 4], transmitters=[3, 4])
        _parse(svg)
        assert svg.count("<path") == 2  # red × (receiver) + white × (⊗ overlay)
        assert 'stroke="#CC0000"' in svg  # pure receiver cross
        assert 'stroke="white"' in svg  # forwarding-receiver overlay
        assert 'fill="#111"' in svg  # pure forwarder disc
        assert 'stroke="#4477AA"' in svg  # plain node ring
        assert "legend" not in svg  # legend is a caption line, not an element
        assert "source" in svg and "forwarding receiver" in svg

    def test_title_escaped(self):
        pos = np.array([[1, 1]], float)
        svg = field_svg(pos, 10.0, source=0, receivers=[], transmitters=[],
                        title="a<b")
        _parse(svg)
        assert "a&lt;b" in svg


class TestSurface:
    def test_well_formed_with_annotations(self):
        vals = np.array([[20.0, 21.0], [22.0, 23.5]])
        svg = surface_svg([3, 4], [0.001, 0.01], vals, title="S")
        _parse(svg)
        assert "20.0" in svg and "23.5" in svg
        assert svg.count("<rect") >= 5  # 4 cells + background

    def test_flat_surface_safe(self):
        vals = np.full((2, 2), 7.0)
        _parse(surface_svg([1, 2], [1, 2], vals))

    def test_text_contrast_flips_on_dark_cells(self):
        vals = np.array([[0.0, 100.0]])
        svg = surface_svg([1], [1, 2], vals)
        _parse(svg)
        assert 'fill="#111">0.0<' in svg  # light cell, dark text
        assert 'fill="#fff">100.0<' in svg  # dark cell, light text

    def test_axis_names_in_header(self):
        vals = np.zeros((1, 1))
        svg = surface_svg([5], [9], vals, row_name="N", col_name="w")
        assert "N\\w" in svg
        assert ">5<" in svg and ">9<" in svg


def test_save_svg_roundtrip(tmp_path):
    svg = line_chart_svg([1, 2], {"A": [1, 2]})
    p = save_svg(svg, tmp_path / "charts" / "a.svg")
    assert p.exists()
    assert p.read_text() == svg
