"""Tests for the SVG renderers."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz.svg import field_svg, line_chart_svg, save_svg, surface_svg


def _parse(svg: str) -> ET.Element:
    """The output must be well-formed XML."""
    return ET.fromstring(svg)


class TestLineChart:
    def test_well_formed_and_has_series(self):
        svg = line_chart_svg([1, 2, 3], {"A": [1, 2, 3], "B": [3, 2, 1]},
                             title="T", xlabel="x", ylabel="y")
        root = _parse(svg)
        assert root.tag.endswith("svg")
        assert svg.count("<polyline") == 2
        assert "T" in svg and ">x<" in svg

    def test_markers_differ_between_series(self):
        svg = line_chart_svg([1, 2], {"A": [1, 2], "B": [2, 1]})
        assert "<circle" in svg  # series A markers
        assert "<rect" in svg  # series B markers (squares)

    def test_empty_data_safe(self):
        root = _parse(line_chart_svg([], {}))
        assert root.tag.endswith("svg")

    def test_constant_series(self):
        svg = line_chart_svg([1, 2, 3], {"A": [5, 5, 5]})
        _parse(svg)

    def test_legend_labels_escaped(self):
        svg = line_chart_svg([1], {"a<b&c": [1]})
        _parse(svg)  # would raise on unescaped characters
        assert "a&lt;b&amp;c" in svg


class TestField:
    def test_well_formed_with_all_roles(self):
        pos = np.array([[0, 0], [50, 50], [100, 100], [150, 150], [25, 75]], float)
        svg = field_svg(pos, 200.0, source=0, receivers=[1, 2], transmitters=[2, 3],
                        title="snap")
        _parse(svg)
        assert "snap" in svg
        # source square + receivers + forwarders present
        assert svg.count("<circle") >= 2

    def test_source_is_square(self):
        pos = np.array([[10, 10]], float)
        svg = field_svg(pos, 100.0, source=0, receivers=[], transmitters=[])
        assert "<rect" in svg


class TestSurface:
    def test_well_formed_with_annotations(self):
        vals = np.array([[20.0, 21.0], [22.0, 23.5]])
        svg = surface_svg([3, 4], [0.001, 0.01], vals, title="S")
        _parse(svg)
        assert "20.0" in svg and "23.5" in svg
        assert svg.count("<rect") >= 5  # 4 cells + background

    def test_flat_surface_safe(self):
        vals = np.full((2, 2), 7.0)
        _parse(surface_svg([1, 2], [1, 2], vals))


def test_save_svg_roundtrip(tmp_path):
    svg = line_chart_svg([1, 2], {"A": [1, 2]})
    p = save_svg(svg, tmp_path / "charts" / "a.svg")
    assert p.exists()
    assert p.read_text() == svg
