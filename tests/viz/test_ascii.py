"""Tests for the ASCII renderers."""

import numpy as np

from repro.viz.ascii_plot import render_field, render_line_chart, render_surface


class TestField:
    def test_markers_present(self):
        pos = np.array([[0.0, 0.0], [100.0, 100.0], [200.0, 200.0], [50.0, 50.0]])
        out = render_field(pos, 200.0, source=0, receivers=[1], transmitters=[2])
        assert "S" in out
        assert "R" in out
        assert "#" in out
        assert "." in out
        assert "legend" not in out  # legend text is inline, not labelled

    def test_forwarding_receiver_marker(self):
        pos = np.array([[0.0, 0.0], [100.0, 100.0]])
        out = render_field(pos, 200.0, source=0, receivers=[1], transmitters=[1])
        assert "@" in out

    def test_higher_rank_wins_cell(self):
        # two nodes mapping to the same cell: source outranks plain node
        pos = np.array([[0.0, 0.0], [0.5, 0.5]])
        out = render_field(pos, 200.0, source=0, receivers=[], transmitters=[], width=10, height=5)
        grid_only = out.rsplit("\n", 1)[0]  # strip the legend line
        assert grid_only.count("S") == 1
        assert grid_only.count(".") == 0  # the plain node was outranked

    def test_dimensions(self):
        pos = np.array([[0.0, 0.0]])
        out = render_field(pos, 200.0, 0, [], [], width=30, height=10)
        lines = out.split("\n")
        assert len(lines) == 11  # 10 rows + legend
        assert all(len(l) == 30 for l in lines[:10])


class TestLineChart:
    def test_renders_all_series(self):
        out = render_line_chart([1, 2, 3], {"A": [1, 2, 3], "B": [3, 2, 1]})
        assert "o=A" in out and "x=B" in out

    def test_empty_data(self):
        assert render_line_chart([], {}) == "(no data)"

    def test_constant_series_no_crash(self):
        out = render_line_chart([1, 2], {"A": [5, 5]})
        assert "o=A" in out

    def test_axis_labels(self):
        out = render_line_chart([0, 10], {"A": [2, 8]}, title="T", ylabel="tx")
        assert out.startswith("T")
        assert "[tx]" in out
        assert "8.00" in out and "2.00" in out


class TestSurface:
    def test_layout(self):
        vals = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = render_surface([3, 4], [0.001, 0.01], vals, title="P")
        lines = out.split("\n")
        assert lines[0] == "P"
        assert "N\\w" in lines[1]
        assert "3" in lines[2] and "1.00" in lines[2]
        assert "4" in lines[3] and "4.00" in lines[3]
