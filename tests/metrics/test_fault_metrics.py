"""Fault metrics on hand-built traces and tiny topologies."""

import numpy as np
import pytest

from repro.metrics.faults import (
    collect_fault_metrics,
    deliveries_by_seq,
    delivery_ratio,
    fault_timeline,
    first_partition_time,
    recovery_latency,
)
from repro.sim.trace import TraceKind, TraceRecorder


def _trace(deliveries=(), faults=()):
    """deliveries: (time, node, seq); faults: (time, node, kind)."""
    t = TraceRecorder()
    for time, node, seq in deliveries:
        t.emit(time, TraceKind.DELIVER, node, "DataPacket", (0, 1, seq))
    for time, node, kind in faults:
        t.emit(time, TraceKind.NOTE, node, "Fault", (kind, "plan"))
    t.records.sort(key=lambda r: r.time)
    return t


def test_fault_timeline_reads_note_records():
    t = _trace(faults=[(1.0, 3, "crash"), (2.0, 3, "recover")])
    assert fault_timeline(t) == [(1.0, 3, "crash"), (2.0, 3, "recover")]
    assert fault_timeline(_trace()) == []


def test_deliveries_by_seq_filters_and_sorts():
    t = _trace(deliveries=[(2.0, 5, 1), (1.0, 4, 1), (0.5, 4, 0), (3.0, 9, 0)])
    out = deliveries_by_seq(t, receivers=[4, 5])
    assert out == {0: [(0.5, 4)], 1: [(1.0, 4), (2.0, 5)]}
    # wrong (source, group) is ignored
    t2 = TraceRecorder()
    t2.emit(1.0, TraceKind.DELIVER, 4, "DataPacket", (7, 1, 0))
    assert deliveries_by_seq(t2, receivers=[4]) == {}


def test_delivery_ratio():
    t = _trace(deliveries=[(1.0, 4, 0), (1.0, 5, 0), (2.0, 4, 1)])
    assert delivery_ratio(t, [4, 5], [0, 1]) == pytest.approx(0.75)
    assert delivery_ratio(t, [4, 5], [0]) == 1.0
    assert delivery_ratio(t, [], [0]) == 1.0
    # duplicate deliveries of one packet at one node count once
    t2 = _trace(deliveries=[(1.0, 4, 0), (1.5, 4, 0)])
    assert delivery_ratio(t2, [4, 5], [0]) == pytest.approx(0.5)


def test_recovery_latency_threshold_semantics():
    # crash at t=1; seq 1 sent at 1.2 reaches both survivors by t=1.8
    t = _trace(deliveries=[(0.5, 4, 0), (0.5, 5, 0), (1.5, 4, 1), (1.8, 5, 1)])
    send_times = {0: 0.0, 1: 1.2}
    lat = recovery_latency(t, [4, 5], crash_time=1.0, send_times=send_times)
    assert lat == pytest.approx(0.8)  # both needed at threshold 0.9
    # at threshold 0.5 the first survivor suffices
    lat_half = recovery_latency(
        t, [4, 5], crash_time=1.0, send_times=send_times, threshold=0.5
    )
    assert lat_half == pytest.approx(0.5)
    # pre-crash packets never count
    assert recovery_latency(t, [4, 5], 2.0, send_times) is None
    # surviving set restricts the demand
    lat_s = recovery_latency(
        t, [4, 5], 1.0, send_times, surviving={4}
    )
    assert lat_s == pytest.approx(0.5)
    assert recovery_latency(t, [4, 5], 1.0, send_times, surviving=set()) is None


def test_first_partition_time_on_a_line():
    # 0 - 1 - 2 - 3, range covers adjacent pairs only
    pos = np.array([[0.0, 0.0], [20.0, 0.0], [40.0, 0.0], [60.0, 0.0]])
    # killing the bridge (1) cuts receivers 2 and 3 off
    assert first_partition_time(pos, 25.0, 0, [2, 3], [(5.0, 1)]) == 5.0
    # killing a receiver only shrinks the demand: no partition
    assert first_partition_time(pos, 25.0, 0, [2, 3], [(5.0, 3)]) is None
    # until the last receiver dies, then the bridge kill at t=7 cuts node 2
    assert first_partition_time(pos, 25.0, 0, [2, 3], [(5.0, 3), (7.0, 1)]) == 7.0
    # a crashed source partitions immediately
    assert first_partition_time(pos, 25.0, 0, [2], [(3.0, 0)]) == 3.0
    # all receivers dead: nothing left to demand
    assert first_partition_time(pos, 25.0, 0, [2], [(3.0, 2), (4.0, 1)]) is None


def test_collect_fault_metrics_end_to_end():
    pos = np.array([[0.0, 0.0], [20.0, 0.0], [40.0, 0.0], [60.0, 0.0]])
    t = _trace(
        deliveries=[
            (0.1, 2, 0), (0.1, 3, 0),           # seq 0: everyone
            (1.4, 2, 1),                         # seq 1 (post-crash): node 2
        ],
        faults=[(1.0, 3, "crash")],
    )
    fm = collect_fault_metrics(
        t, pos, 25.0, receivers=[2, 3], send_times={0: 0.0, 1: 1.2}, threshold=0.9
    )
    assert fm.crashes == 1 and fm.packets_sent == 2
    assert fm.pre_fault_delivery == 1.0
    assert fm.post_fault_delivery == 1.0  # node 3 died; survivor 2 got seq 1
    assert fm.delivery_ratio == pytest.approx(0.75)
    assert fm.recovery_latency == pytest.approx(0.4)
    assert fm.time_to_first_partition is None


def test_collect_fault_metrics_without_faults():
    t = _trace(deliveries=[(0.1, 2, 0)])
    fm = collect_fault_metrics(
        t, np.zeros((3, 2)), 25.0, receivers=[2], send_times={0: 0.0}
    )
    assert fm.crashes == 0
    assert fm.delivery_ratio == 1.0
    assert fm.recovery_latency is None and fm.time_to_first_partition is None
