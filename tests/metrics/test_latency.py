"""Tests for the construction-latency metric."""

import numpy as np

from repro.core.backoff import BackoffParams, BiasedBackoff
from repro.core.mtmrp import MtmrpAgent
from repro.metrics.collect import collect_metrics
from repro.protocols.odmrp import OdmrpAgent
from tests.core.helpers import build, line_positions, run_round


def _latency(agent_factory, positions, receivers, seed=1):
    sim, net, agents = build(positions, 25.0, receivers=receivers,
                             agent_factory=agent_factory, seed=seed)
    run_round(sim, agents)
    m = collect_metrics(net, agents, 0, 1, receivers)
    return m.construction_latency


def test_latency_positive_and_bounded():
    lat = _latency(lambda: MtmrpAgent(), line_positions(5), [4])
    bo = BiasedBackoff(BackoffParams())
    assert 0.0 < lat < 5 * bo.max_delay()  # 4 hops of at most max_delay each


def test_latency_grows_with_path_length():
    short = _latency(lambda: MtmrpAgent(), line_positions(3), [2])
    long = _latency(lambda: MtmrpAgent(), line_positions(7), [6])
    assert long > short


def test_latency_scales_with_w():
    slow = lambda: MtmrpAgent(backoff=BiasedBackoff(BackoffParams(w=0.01)))
    fast = lambda: MtmrpAgent(backoff=BiasedBackoff(BackoffParams(w=0.001)))
    assert _latency(slow, line_positions(5), [4]) > _latency(fast, line_positions(5), [4])


def test_odmrp_has_latency_too():
    lat = _latency(lambda: OdmrpAgent(), line_positions(5), [4])
    assert lat > 0.0


def test_zero_receiver_adjacent_to_source():
    """Receiver one hop from the source: latency is essentially the MAC
    access time (no backoff involved for the source's own flood)."""
    lat = _latency(lambda: MtmrpAgent(), line_positions(2), [1])
    assert 0.0 <= lat < 1e-3
