"""Tests for metric computation."""

import numpy as np
import pytest

from repro.core.mtmrp import MtmrpAgent
from repro.metrics.collect import (
    average_relay_profit,
    collect_metrics,
    data_transmitters,
    extra_nodes,
)
from repro.sim.trace import TraceKind, TraceRecorder
from tests.core.helpers import build, line_positions, run_round


def test_extra_nodes_definition():
    assert extra_nodes({0, 1, 2, 3}, source=0, receivers={3}) == 2
    assert extra_nodes({0}, source=0, receivers={1}) == 0
    assert extra_nodes(set(), source=0, receivers=set()) == 0


def test_data_transmitters_from_trace():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 0, "DataPacket", 1)
    t.emit(0.0, TraceKind.TX, 4, "DataPacket", 2)
    t.emit(0.0, TraceKind.TX, 4, "JoinQuery", 3)
    assert data_transmitters(t) == {0, 4}


class TestAverageRelayProfit:
    def test_counts_receiver_neighbors(self):
        # line 0-1-2, receiver 2; transmitters {0, 1}: node 1 has one
        # receiver neighbor, node 0 has none -> mean 0.5
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        arp = average_relay_profit(net, {0, 1}, {2})
        assert arp == pytest.approx(0.5)

    def test_empty_transmitters(self):
        sim, net, _agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: MtmrpAgent())
        assert average_relay_profit(net, set(), {2}) == 0.0

    def test_scales_with_receiver_density(self):
        from repro.net.topology import grid_topology

        sim, net, agents = build(grid_topology(), 40.0, receivers=list(range(1, 61)),
                                 agent_factory=lambda: MtmrpAgent())
        # a central transmitter with 8 neighbors, ~60% receivers
        arp = average_relay_profit(net, {55}, set(range(1, 61)))
        assert 3.0 <= arp <= 8.0


class TestCollect:
    def test_full_collection_on_line(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        m = collect_metrics(net, agents, 0, 1, [2])
        assert m.data_transmissions == 2
        assert m.tree_transmissions == 2
        assert m.extra_nodes == 1  # node 1
        assert m.delivered == 1
        assert m.delivery_ratio == 1.0
        assert m.covered_receivers == 1
        assert m.join_query_tx == 3  # every node floods once
        assert m.join_reply_tx >= 1
        assert m.hello_tx == 0  # bootstrap mode
        assert m.energy_joules > 0
        assert m.transmitters == {0, 1}

    def test_tree_equals_data_count_on_perfect_channel(self):
        from repro.net.topology import grid_topology

        rng = np.random.default_rng(3)
        receivers = rng.choice(np.arange(1, 100), size=12, replace=False).tolist()
        sim, net, agents = build(grid_topology(), 40.0, receivers=receivers,
                                 agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        m = collect_metrics(net, agents, 0, 1, receivers)
        assert m.data_transmissions == m.tree_transmissions
        assert m.delivery_ratio == 1.0
