"""Tests for metric computation."""

import numpy as np
import pytest

from repro.core.mtmrp import MtmrpAgent
from repro.metrics.collect import (
    average_relay_profit,
    collect_metrics,
    data_transmitters,
    extra_nodes,
)
from repro.sim.trace import TraceKind, TraceRecorder
from tests.core.helpers import build, line_positions, run_round


def test_extra_nodes_definition():
    assert extra_nodes({0, 1, 2, 3}, source=0, receivers={3}) == 2
    assert extra_nodes({0}, source=0, receivers={1}) == 0
    assert extra_nodes(set(), source=0, receivers=set()) == 0


def test_data_transmitters_from_trace():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 0, "DataPacket", 1)
    t.emit(0.0, TraceKind.TX, 4, "DataPacket", 2)
    t.emit(0.0, TraceKind.TX, 4, "JoinQuery", 3)
    assert data_transmitters(t) == {0, 4}


class TestAverageRelayProfit:
    def test_counts_receiver_neighbors(self):
        # line 0-1-2, receiver 2; transmitters {0, 1}: node 1 has one
        # receiver neighbor, node 0 has none -> mean 0.5
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        arp = average_relay_profit(net, {0, 1}, {2})
        assert arp == pytest.approx(0.5)

    def test_empty_transmitters(self):
        sim, net, _agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: MtmrpAgent())
        assert average_relay_profit(net, set(), {2}) == 0.0

    def test_scales_with_receiver_density(self):
        from repro.net.topology import grid_topology

        sim, net, agents = build(grid_topology(), 40.0, receivers=list(range(1, 61)),
                                 agent_factory=lambda: MtmrpAgent())
        # a central transmitter with 8 neighbors, ~60% receivers
        arp = average_relay_profit(net, {55}, set(range(1, 61)))
        assert 3.0 <= arp <= 8.0


class TestCollect:
    def test_full_collection_on_line(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        m = collect_metrics(net, agents, 0, 1, [2])
        assert m.data_transmissions == 2
        assert m.tree_transmissions == 2
        assert m.extra_nodes == 1  # node 1
        assert m.delivered == 1
        assert m.delivery_ratio == 1.0
        assert m.covered_receivers == 1
        assert m.join_query_tx == 3  # every node floods once
        assert m.join_reply_tx >= 1
        assert m.hello_tx == 0  # bootstrap mode
        assert m.energy_joules > 0
        assert m.transmitters == {0, 1}

    def test_tree_equals_data_count_on_perfect_channel(self):
        from repro.net.topology import grid_topology

        rng = np.random.default_rng(3)
        receivers = rng.choice(np.arange(1, 100), size=12, replace=False).tolist()
        sim, net, agents = build(grid_topology(), 40.0, receivers=receivers,
                                 agent_factory=lambda: MtmrpAgent())
        run_round(sim, agents)
        m = collect_metrics(net, agents, 0, 1, receivers)
        assert m.data_transmissions == m.tree_transmissions
        assert m.delivery_ratio == 1.0


class TestColumnarMetrics:
    """The vectorized per-seed reduction must mirror ``aggregate`` exactly."""

    def _results(self, n):
        from repro.experiments.config import SimulationConfig
        from repro.experiments.runner import run_many

        cfgs = [
            SimulationConfig(protocol="mtmrp", topology="grid", group_size=10,
                             mac="ideal", seed=s)
            for s in range(n)
        ]
        return run_many(cfgs)

    def test_columns_match_per_result_attributes(self):
        from repro.metrics.collect import NUMERIC_METRICS, columnar_metrics

        results = self._results(4)
        cols = columnar_metrics(results)
        assert set(cols) == set(NUMERIC_METRICS)
        for name, vals in cols.items():
            assert vals.shape == (4,)
            assert vals.tolist() == pytest.approx(
                [float(getattr(r, name)) for r in results]
            )

    def test_summary_matches_aggregate_exactly(self):
        from repro.experiments.runner import aggregate, aggregate_columnar

        results = self._results(5)
        summary = aggregate_columnar(results)
        for name, stats in summary.items():
            ref = aggregate(results, name)
            for field in ("mean", "std", "sem", "p50", "p95", "n"):
                assert stats[field] == ref[field], (name, field)

    def test_single_replicate_convention(self):
        """n=1 keeps aggregate's convention: zero spread, NaN percentiles."""
        from repro.experiments.runner import aggregate_columnar

        (stats,) = [aggregate_columnar(self._results(1))["delivery_ratio"]]
        assert stats["std"] == 0.0 == stats["sem"]
        assert np.isnan(stats["p50"]) and np.isnan(stats["p95"])

    def test_unknown_metric_and_empty_rejected(self):
        from repro.experiments.runner import aggregate_columnar

        with pytest.raises(ValueError, match="no results"):
            aggregate_columnar([])
        with pytest.raises(ValueError, match="delivery_ratio"):
            aggregate_columnar(self._results(2), metrics=["no_such_metric"])
