"""Edge cases of the fault/availability metrics.

The chaos campaign leans on these functions under conditions the happy
path never hits: a fault at t=0, partitions that never recover, and
back-to-back crashes inside one recovery window.  Latencies must stay
non-negative and recoveries must never pair across rounds.
"""

import pytest

from repro.metrics.faults import (
    mean_time_to_recovery,
    recovery_latency,
    route_state_timeline,
    time_in_state,
    windowed_delivery,
)
from repro.sim.trace import TraceKind, TraceRecorder


def _trace(deliveries=(), faults=(), states=()):
    """deliveries: (time, node, seq); faults: (time, node, kind);
    states: (time, node, state, reason)."""
    t = TraceRecorder()
    for time, node, seq in deliveries:
        t.emit(time, TraceKind.DELIVER, node, "DataPacket", (0, 1, seq))
    for time, node, kind in faults:
        t.emit(time, TraceKind.NOTE, node, "Fault", (kind, "plan"))
    for time, node, state, reason in states:
        t.emit(time, TraceKind.NOTE, node, "RouteState", (state, 0, 1, reason))
    t.records.sort(key=lambda r: r.time)
    return t


class TestFaultAtTimeZero:
    def test_crash_at_t0_gives_nonnegative_latency(self):
        # seq 0 sent at t=0 — exactly the crash instant — still counts as
        # post-crash traffic and must not produce a negative latency
        t = _trace(
            deliveries=[(0.4, 4, 0)],
            faults=[(0.0, 9, "crash")],
        )
        lat = recovery_latency(t, [4], crash_time=0.0, send_times={0: 0.0})
        assert lat is not None and lat >= 0.0
        assert lat == pytest.approx(0.4)

    def test_mttr_with_crash_at_t0(self):
        t = _trace(deliveries=[(0.4, 4, 0)], faults=[(0.0, 9, "crash")])
        mttr, recovered, crashes = mean_time_to_recovery(t, [4], {0: 0.0})
        assert crashes == 1 and recovered == 1
        assert mttr == pytest.approx(0.4)


class TestNeverRecoveringPartition:
    def test_mttr_none_when_nothing_recovers(self):
        # the only receiver is cut off for good: no post-crash delivery
        t = _trace(
            deliveries=[(0.2, 4, 0)],
            faults=[(1.0, 9, "crash")],
        )
        mttr, recovered, crashes = mean_time_to_recovery(t, [4], {0: 0.0, 1: 1.5})
        assert mttr is None
        assert recovered == 0 and crashes == 1

    def test_crashed_receiver_leaves_empty_surviving_set(self):
        # every receiver crashed: recovery is undefined, not zero
        t = _trace(faults=[(1.0, 4, "crash")])
        mttr, recovered, crashes = mean_time_to_recovery(t, [4], {0: 0.0, 1: 1.5})
        assert mttr is None and recovered == 0 and crashes == 1
        assert recovery_latency(t, [4], 1.0, {1: 1.5}, surviving=set()) is None

    def test_windowed_delivery_shows_the_outage(self):
        t = _trace(deliveries=[(0.2, 4, 0), (0.3, 4, 1)])
        send_times = {0: 0.0, 1: 0.5, 2: 2.0, 3: 2.5}  # 2 and 3 never arrive
        out = windowed_delivery(t, [4], send_times, window=1.0)
        assert out == [(0.0, 1.0), (2.0, 0.0)]


class TestBackToBackFaults:
    def test_latency_never_pairs_across_crashes(self):
        # two crashes 0.5 s apart; the only post-crash delivery happens
        # after BOTH — each crash measures to that same delivery, and
        # neither latency is negative
        t = _trace(
            deliveries=[(3.0, 4, 1)],
            faults=[(1.0, 8, "crash"), (1.5, 9, "crash")],
        )
        send_times = {0: 0.0, 1: 2.0}
        mttr, recovered, crashes = mean_time_to_recovery(t, [4], send_times)
        assert crashes == 2 and recovered == 2
        lat_a = recovery_latency(t, [4], 1.0, send_times)
        lat_b = recovery_latency(t, [4], 1.5, send_times)
        assert lat_a == pytest.approx(2.0)
        assert lat_b == pytest.approx(1.5)
        assert mttr == pytest.approx((2.0 + 1.5) / 2)
        assert all(v >= 0 for v in (lat_a, lat_b, mttr))

    def test_delivery_between_crashes_only_credits_the_first(self):
        # seq 1 lands between the two crashes: it recovers crash #1, but
        # for crash #2 it was sent *before* the crash and must not count
        t = _trace(
            deliveries=[(1.4, 4, 1)],
            faults=[(1.0, 8, "crash"), (1.5, 9, "crash")],
        )
        send_times = {1: 1.2}
        assert recovery_latency(t, [4], 1.0, send_times) == pytest.approx(0.4)
        assert recovery_latency(t, [4], 1.5, send_times) is None


class TestRouteStateAccounting:
    def test_timeline_is_time_sorted(self):
        t = _trace(states=[
            (2.0, 3, "healthy", "graft-ok"),
            (1.0, 3, "repairing", "forwarder-lost"),
        ])
        out = route_state_timeline(t)
        assert [s for _t, _n, s, _r in out] == ["repairing", "healthy"]

    def test_time_in_state_closes_open_tail(self):
        t = _trace(states=[
            (1.0, 3, "repairing", "forwarder-lost"),
            (3.0, 3, "degraded", "budget-exhausted"),
        ])
        out = time_in_state(t, end_time=10.0)
        assert out["repairing"] == pytest.approx(2.0)
        assert out["degraded"] == pytest.approx(7.0)

    def test_sessions_account_independently(self):
        t = TraceRecorder()
        t.emit(1.0, TraceKind.NOTE, 3, "RouteState", ("repairing", 0, 1, "x"))
        t.emit(2.0, TraceKind.NOTE, 4, "RouteState", ("repairing", 0, 1, "x"))
        t.emit(3.0, TraceKind.NOTE, 3, "RouteState", ("healthy", 0, 1, "x"))
        out = time_in_state(t, end_time=5.0)
        # node 3: 1->3 repairing; node 4: 2->5 open tail
        assert out["repairing"] == pytest.approx(2.0 + 3.0)

    def test_empty_trace_yields_empty_dicts(self):
        t = _trace()
        assert route_state_timeline(t) == []
        assert time_in_state(t, end_time=5.0) == {}


class TestWindowedDeliveryEdges:
    def test_empty_inputs(self):
        t = _trace()
        assert windowed_delivery(t, [], {0: 0.0}, 1.0) == []
        assert windowed_delivery(t, [4], {}, 1.0) == []
        assert windowed_delivery(t, [4], {0: 0.0}, 0.0) == []

    def test_late_delivery_credits_send_window(self):
        # sent in window 0, delivered during window 3: the availability
        # question is about the traffic *offered* in window 0
        t = _trace(deliveries=[(3.5, 4, 0)])
        out = windowed_delivery(t, [4], {0: 0.2}, window=1.0)
        assert out == [(0.0, 1.0)]
