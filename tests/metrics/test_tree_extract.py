"""Tests for tree reconstruction from traces and protocol state."""

import networkx as nx
import numpy as np

from repro.core.mtmrp import MtmrpAgent
from repro.metrics.tree_extract import (
    data_tree_from_trace,
    forwarder_set,
    reverse_path_tree,
)
from repro.net.topology import grid_topology
from repro.sim.trace import TraceKind, TraceRecorder
from tests.core.helpers import build, line_positions, run_round


def _mtmrp_run(positions, receivers, comm=25.0, seed=1):
    sim, net, agents = build(positions, comm, receivers=receivers,
                             agent_factory=lambda: MtmrpAgent(), seed=seed)
    run_round(sim, agents)
    return sim, net, agents


def test_forwarder_set():
    _sim, _net, agents = _mtmrp_run(line_positions(4), [3])
    assert forwarder_set(agents, 0, 1) == {1, 2}


def test_reverse_path_tree_edges_point_downstream():
    _sim, _net, agents = _mtmrp_run(line_positions(4), [3])
    t = reverse_path_tree(agents, 0, 1)
    assert set(t.edges) == {(0, 1), (1, 2), (2, 3)}


def test_data_tree_from_trace_line():
    t = TraceRecorder()
    # uid 10 transmitted by 0, heard by 1; uid 11 by 1, heard by 2
    t.emit(0.0, TraceKind.TX, 0, "DataPacket", 10)
    t.emit(0.1, TraceKind.RX, 1, "DataPacket", 10)
    t.emit(0.2, TraceKind.TX, 1, "DataPacket", 11)
    t.emit(0.3, TraceKind.RX, 2, "DataPacket", 11)
    t.emit(0.4, TraceKind.RX, 1, "DataPacket", 11)  # duplicate back at 1
    tree = data_tree_from_trace(t, source=0)
    assert set(tree.edges) == {(0, 1), (1, 2)}


def test_data_tree_matches_protocol_on_grid():
    """End to end: record RX, rebuild the data-plane tree, and check every
    covered receiver is reachable from the source in it."""
    from repro.mac.ideal import IdealMac
    from repro.net.network import Network
    from repro.sim.kernel import Simulator

    sim = Simulator(seed=5)  # default trace keeps RX records
    net = Network(sim, grid_topology(), comm_range=40.0,
                  mac_factory=IdealMac, perfect_channel=True)
    rng = np.random.default_rng(8)
    receivers = rng.choice(np.arange(1, 100), size=10, replace=False).tolist()
    net.set_group_members(1, receivers)
    net.bootstrap_neighbor_tables()
    agents = net.install(lambda node: MtmrpAgent())
    net.start()
    agents[0].request_route(1)
    sim.run(until=2.0)
    agents[0].send_data(1, 0)
    sim.run(until=3.0)
    tree = data_tree_from_trace(sim.trace, source=0)
    for r in receivers:
        assert nx.has_path(tree, 0, r)
    # a data-plane tree has in-degree <= 1 everywhere (first copy wins)
    assert all(d <= 1 for _n, d in tree.in_degree())
