"""Unit tests for the CSMA/CA MAC: carrier sense, backoff, unicast ARQ."""

import numpy as np

from repro.mac.csma import CsmaMac, CsmaParams
from repro.net.network import Network
from repro.net.packet import BROADCAST, AckFrame, DataPacket
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind


def line_net(sim, n=2, spacing=10.0, perfect=False):
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    return Network(sim, pos, comm_range=40.0, mac_factory=CsmaMac, perfect_channel=perfect)


def test_difs_before_transmit():
    sim = Simulator(seed=1)
    net = line_net(sim)
    net.node(0).send(DataPacket(src=0))
    sim.run()
    tx = list(sim.trace.filter(kind=TraceKind.TX, packet_type="DataPacket"))
    assert tx[0].time >= CsmaParams().difs


def test_carrier_sense_serialises_neighbors():
    """A node that finds the medium busy defers until the frame ends.

    (Two *perfectly* synchronized senders both see an idle medium at DIFS
    and collide — faithful 802.11 behaviour — so the second send here is
    staggered into the first frame's airtime.)
    """
    sim = Simulator(seed=3)
    net = line_net(sim, n=2)
    net.node(0).send(DataPacket(src=0))
    # enqueue at node 1 in the middle of node 0's frame
    sim.schedule(100e-6, net.node(1).send, DataPacket(src=1))
    sim.run()
    tx = sorted(
        (r.time for r in sim.trace.filter(kind=TraceKind.TX, packet_type="DataPacket"))
    )
    airtime = net.channel.airtime(DataPacket(src=0))
    assert len(tx) == 2
    assert tx[1] - tx[0] >= airtime  # no overlap: second waited
    assert net.node(1).mac.deferrals > 0


def test_broadcast_gets_no_ack():
    sim = Simulator(seed=1)
    net = line_net(sim)
    net.node(0).send(DataPacket(src=0, dst=BROADCAST))
    sim.run()
    assert sim.trace.count(TraceKind.TX, "AckFrame") == 0


def test_unicast_is_acked():
    sim = Simulator(seed=1)
    net = line_net(sim)
    net.node(0).send(DataPacket(src=0, dst=1))
    sim.run()
    assert sim.trace.count(TraceKind.TX, "AckFrame") == 1
    # frame delivered exactly once to the upper layer (ACK consumed by MAC)
    assert net.node(0).mac.dropped_retry == 0


def test_unicast_retries_until_receiver_appears():
    """If the destination is dead, the sender retries then gives up."""
    sim = Simulator(seed=1)
    net = line_net(sim)
    net.node(1).fail()  # never ACKs
    net.node(0).send(DataPacket(src=0, dst=1))
    sim.run()
    mac = net.node(0).mac
    assert mac.retries == CsmaParams().retry_limit
    assert mac.dropped_retry == 1
    # the head was abandoned; queue drained
    assert not mac.queue


def test_retry_recovers_lost_frame():
    """A frame lost to collision is retransmitted and eventually delivered."""
    sim = Simulator(seed=5)
    # hidden-terminal triangle: 0 and 2 are out of each other's range, both
    # in range of 1 -> their frames can collide at 1, ARQ must recover.
    pos = np.array([[0.0, 0.0], [35.0, 0.0], [70.0, 0.0]])
    net = Network(sim, pos, comm_range=40.0, mac_factory=CsmaMac)
    delivered = []
    orig = net.node(1).on_packet_received

    def spy(pkt):
        delivered.append(pkt)
        orig(pkt)

    net.node(1).on_packet_received = spy  # type: ignore[method-assign]
    for _ in range(5):
        net.node(0).send(DataPacket(src=0, dst=1))
        net.node(2).send(DataPacket(src=2, dst=1))
    sim.run(until=5.0)
    data = [p for p in delivered if isinstance(p, DataPacket)]
    assert len(data) >= 9  # ARQ recovered nearly everything (dups possible)


def test_ack_consumed_by_mac_not_agents():
    sim = Simulator(seed=1)
    net = line_net(sim)
    seen = []

    class Probe:
        handled_packets = (AckFrame,)

        def attach(self, node):
            self.node = node

        def start(self):
            pass

        def on_packet(self, p):  # pragma: no cover - must never fire
            seen.append(p)

    net.node(0).add_agent(Probe())
    net.node(1).send(DataPacket(src=1, dst=0))
    sim.run()
    assert sim.trace.count(TraceKind.TX, "AckFrame") == 1
    assert seen == []


def test_deferral_counter_increments_under_contention():
    sim = Simulator(seed=2)
    net = line_net(sim, n=5, spacing=5.0)
    rng = np.random.default_rng(0)
    for i in range(5):
        for k in range(3):
            # staggered arrivals inside each other's airtime
            sim.schedule(float(rng.uniform(0, 2e-3)), net.node(i).send, DataPacket(src=i))
    sim.run()
    assert sum(net.node(i).mac.deferrals for i in range(5)) > 0


def test_fixed_cw_for_broadcast():
    p = CsmaParams()
    assert p.cw_min < p.cw_max
    assert p.retry_limit == 7


def test_backoff_block_prefetch_is_scalar_equivalent(monkeypatch):
    """The block-prefetched backoff draws are draw-for-draw scalar.

    With ``_BACKOFF_BLOCK=1`` every backoff is a fresh single draw — the
    scalar reference by construction.  A full contention-heavy run must
    produce the bit-identical trace at the production block size,
    including across contention-window changes (unicast retry doubling),
    which exercise the rewind-and-redraw reconciliation.
    """
    import repro.mac.csma as csma_mod
    from repro.experiments.config import SimulationConfig
    from repro.experiments.runner import run_single
    from repro.net.packet import reset_uids
    from repro.sim.trace import TraceRecorder, trace_digest

    cfg = SimulationConfig(
        protocol="mtmrp", topology="grid", grid_nx=5, grid_ny=5, side=100.0,
        group_size=5, mac="csma", seed=17,
    )
    reset_uids()
    tr_block = TraceRecorder()
    res_block = run_single(cfg, trace=tr_block, cache=False)

    monkeypatch.setattr(csma_mod, "_BACKOFF_BLOCK", 1)
    reset_uids()
    tr_scalar = TraceRecorder()
    res_scalar = run_single(cfg, trace=tr_scalar, cache=False)

    assert trace_digest(tr_block) == trace_digest(tr_scalar)
    assert res_block == res_scalar
