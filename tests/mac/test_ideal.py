"""Unit tests for the ideal MAC."""

from repro.mac.ideal import IdealMac
from repro.net.network import Network
from repro.net.packet import DataPacket
from repro.net.topology import grid_topology
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind


def two_node_net(sim):
    # two nodes 10 m apart, well within range
    import numpy as np

    pos = np.array([[0.0, 0.0], [10.0, 0.0]])
    return Network(sim, pos, comm_range=40.0, mac_factory=IdealMac, perfect_channel=True)


def test_fixed_access_delay():
    sim = Simulator(seed=1)
    net = two_node_net(sim)
    pkt = DataPacket(src=0)
    net.node(0).send(pkt)
    sim.run()
    tx = list(sim.trace.filter(kind=TraceKind.TX))
    assert len(tx) == 1
    assert tx[0].time == 10e-6  # the default access delay


def test_queue_serialises_frames():
    sim = Simulator(seed=1)
    net = two_node_net(sim)
    for _ in range(3):
        net.node(0).send(DataPacket(src=0))
    sim.run()
    times = [r.time for r in sim.trace.filter(kind=TraceKind.TX)]
    assert len(times) == 3
    airtime = net.channel.airtime(DataPacket(src=0))
    # consecutive transmissions separated by at least one airtime
    assert times[1] - times[0] >= airtime
    assert times[2] - times[1] >= airtime


def test_delivery_to_neighbor():
    sim = Simulator(seed=1)
    net = two_node_net(sim)
    got = []
    net.node(1).on_packet_received = got.append  # type: ignore[method-assign]
    net.node(0).send(DataPacket(src=0))
    sim.run()
    assert len(got) == 1


def test_queue_overflow_drops():
    sim = Simulator(seed=1)
    net = two_node_net(sim)
    mac = net.node(0).mac
    mac.max_queue = 2
    for _ in range(5):
        net.node(0).send(DataPacket(src=0))
    assert mac.dropped_overflow == 3
    sim.run()
    assert sim.trace.count(TraceKind.TX) == 2


def test_out_of_range_not_delivered():
    import numpy as np

    sim = Simulator(seed=1)
    pos = np.array([[0.0, 0.0], [100.0, 0.0]])
    net = Network(sim, pos, comm_range=40.0, mac_factory=IdealMac, perfect_channel=True)
    net.node(0).send(DataPacket(src=0))
    sim.run()
    assert sim.trace.count(TraceKind.RX) == 0
