"""StreamingSampler: windows, deltas, streaming callback."""

import json

import pytest

from repro.obs import Sample, StreamingSampler
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        StreamingSampler(window=0.0)
    with pytest.raises(ValueError):
        StreamingSampler(window=-1.0)


def test_double_attach_raises():
    s = StreamingSampler()
    s.attach(Simulator(seed=1))
    with pytest.raises(RuntimeError):
        s.attach(Simulator(seed=2))


def test_sample_now_before_attach_raises():
    with pytest.raises(RuntimeError):
        StreamingSampler().sample_now()


def test_one_sample_per_window():
    sim = Simulator(seed=1)
    sampler = StreamingSampler(window=0.5).attach(sim)
    sim.schedule(2.0, lambda: None)
    sim.run(until=2.0)
    # windows close at 0.5, 1.0, 1.5, 2.0
    assert [s.time for s in sampler.samples] == [0.5, 1.0, 1.5, 2.0]


def test_windowed_deltas_not_cumulative():
    sim = Simulator(seed=1)
    sampler = StreamingSampler(window=1.0).attach(sim)
    trace = sim.trace

    def burst(n):
        for _ in range(n):
            trace.emit(sim.now, TraceKind.TX, 0, "DataPacket")

    sim.schedule(0.25, burst, 3)
    sim.schedule(1.25, burst, 5)
    sim.run(until=2.0)
    assert [s.tx_w for s in sampler.samples] == [3, 5]


def test_delivery_ratio_over_bound_receivers():
    sim = Simulator(seed=1)
    sampler = StreamingSampler(window=1.0).attach(sim)
    sampler.bind_receivers([10, 11, 12, 13])
    trace = sim.trace
    sim.schedule(0.5, lambda: trace.emit(sim.now, TraceKind.DELIVER, 10, "DataPacket"))
    sim.schedule(0.6, lambda: trace.emit(sim.now, TraceKind.DELIVER, 11, "DataPacket"))
    # a delivery outside the group must not count
    sim.schedule(0.7, lambda: trace.emit(sim.now, TraceKind.DELIVER, 99, "DataPacket"))
    sim.run(until=1.0)
    assert sampler.samples[-1].delivery_ratio == pytest.approx(0.5)
    assert sampler.samples[-1].delivers_w == 3


def test_route_error_window_counting():
    sim = Simulator(seed=1)
    sampler = StreamingSampler(window=1.0).attach(sim)
    trace = sim.trace
    sim.schedule(0.5, lambda: trace.emit(sim.now, TraceKind.TX, 4, "RouteError"))
    sim.run(until=2.0)
    assert [s.route_errors_w for s in sampler.samples] == [1, 0]


def test_on_sample_streams_live():
    sim = Simulator(seed=1)
    seen = []
    sampler = StreamingSampler(window=0.5, on_sample=seen.append).attach(sim)
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    assert seen == sampler.samples
    assert all(isinstance(s, Sample) for s in seen)


def test_series_and_jsonl():
    sim = Simulator(seed=1)
    sampler = StreamingSampler(window=0.5).attach(sim)
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    assert sampler.series("time") == [0.5, 1.0]
    rows = [json.loads(line) for line in sampler.to_jsonl().splitlines()]
    assert rows[0]["time"] == 0.5
    # "sessions" is flattened into per-flow columns (none bound here)
    assert set(rows[0]) == set(Sample._fields) - {"sessions"}


def test_sampler_emits_no_trace_records():
    sim = Simulator(seed=1)
    StreamingSampler(window=0.1).attach(sim)
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    assert sim.trace.records == []
    assert sum(sim.trace.counts.values()) == 0


def test_heap_depth_gauge_is_readable_mid_run():
    sim = Simulator(seed=1)
    sampler = StreamingSampler(window=0.5).attach(sim)
    for k in range(5):
        sim.schedule(10.0 + k, lambda: None)
    sim.run(until=1.0)
    # 5 far-future events + the sampler's own next tick remain
    assert all(s.pending >= 5 for s in sampler.samples)


def test_sampler_tracks_union_of_session_receivers():
    """Multi-session runs bind every session's receivers, so the final
    window's delivery_ratio covers the whole plan (1.0 on ideal MAC)."""
    from repro.experiments.config import SimulationConfig
    from repro.experiments.runner import run_single
    from repro.obs import Observer
    from repro.traffic.spec import SessionSpec

    cfg = SimulationConfig(
        protocol="mtmrp", topology="grid", grid_nx=5, grid_ny=5,
        side=100.0, seed=31, mac="ideal",
        sessions=(
            SessionSpec(source=0, group=1, group_size=4, n_packets=2),
            SessionSpec(source=24, group=2, group_size=4, start=0.4, n_packets=2),
        ),
    )
    obs = Observer()
    result = run_single(cfg, cache=False, obs=obs)
    assert result.traffic.aggregate_delivery_ratio == 1.0
    final = obs.sampler.samples[-1]
    assert final.delivery_ratio == 1.0
    assert sum(s.delivers_w for s in obs.sampler.samples) == 16
    # per-session columns: keyed by SessionSpec.key(), flattened in JSONL
    assert [k for k, _, _ in final.sessions] == ["s0.g1", "s24.g2"]
    assert all(ratio == 1.0 for _, _, ratio in final.sessions)
    for key in ("s0.g1", "s24.g2"):
        total = sum(dw for s in obs.sampler.samples
                    for kk, dw, _ in s.sessions if kk == key)
        assert total == 8
    row = json.loads(obs.sampler.to_jsonl().splitlines()[-1])
    assert row["delivers_w.s0.g1"] == final.sessions[0][1]
    assert row["delivery_ratio.s24.g2"] == 1.0
    assert "sessions" not in row
