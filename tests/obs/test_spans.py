"""SpanRecorder: nesting, durations, exports."""

import json

import pytest

from repro.obs import Span, SpanRecorder
from repro.sim.kernel import Simulator


def test_begin_end_records_both_clocks():
    rec = SpanRecorder()
    sim = Simulator(seed=1)
    sim.schedule(2.5, lambda: None)
    sp = rec.begin("route-discovery", sim)
    sim.run()
    rec.end(sim)
    assert sp.sim_start == 0.0
    assert sp.sim_end == 2.5
    assert sp.sim_duration == 2.5
    assert sp.wall_duration is not None and sp.wall_duration >= 0.0
    assert sp.depth == 0 and sp.parent is None


def test_nesting_tracks_depth_and_parent():
    rec = SpanRecorder()
    with rec.span("outer"):
        with rec.span("inner"):
            pass
        with rec.span("sibling"):
            pass
    outer, inner, sibling = rec.spans
    assert (outer.depth, inner.depth, sibling.depth) == (0, 1, 1)
    assert inner.parent == 0 and sibling.parent == 0
    assert all(sp.wall_end is not None for sp in rec.spans)


def test_end_without_begin_raises():
    with pytest.raises(RuntimeError):
        SpanRecorder().end()


def test_mark_is_instantaneous_and_skips_stack():
    rec = SpanRecorder()
    with rec.span("phase"):
        m = rec.mark("checkpoint", note="hello")
    assert m.wall_duration == 0.0 and m.sim_duration == 0.0
    assert m.depth == 1 and m.meta == {"note": "hello"}
    # the mark never entered the open stack
    assert rec.spans[0].name == "phase" and rec.spans[0].wall_end is not None


def test_add_finished_bypasses_open_stack():
    rec = SpanRecorder()
    rec.begin("data-delivery")
    rec.add_finished("fault-recovery", wall_start=1.0, wall_end=2.0,
                     sim_start=0.5, sim_end=0.75)
    # closing the phase must close *the phase*, not the recovery span
    closed = rec.end()
    assert closed.name == "data-delivery"
    recovery = rec.spans[1]
    assert recovery.name == "fault-recovery"
    assert recovery.sim_duration == 0.25
    assert recovery.wall_duration == 1.0


def test_close_all_closes_every_open_span():
    rec = SpanRecorder()
    rec.begin("a")
    rec.begin("b")
    rec.close_all()
    assert all(sp.wall_end is not None for sp in rec.spans)
    assert len(rec) == 2


def test_jsonl_roundtrip():
    rec = SpanRecorder()
    with rec.span("phase", None, protocol="mtmrp"):
        pass
    rows = [json.loads(line) for line in rec.to_jsonl().splitlines()]
    assert rows[0]["name"] == "phase"
    assert rows[0]["meta"] == {"protocol": "mtmrp"}
    assert rows[0]["wall_s"] >= 0.0


def test_chrome_trace_document_shape():
    rec = SpanRecorder()
    with rec.span("phase"):
        rec.mark("instant")
    doc = rec.chrome_trace()
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert len(complete) == 1 and len(instants) == 1
    assert complete[0]["ts"] >= 0.0 and complete[0]["dur"] >= 0.0
    # the document must be valid JSON end to end
    json.dumps(doc)


def test_timeline_renders_rows():
    rec = SpanRecorder()
    with rec.span("outer"):
        with rec.span("inner"):
            pass
    text = rec.timeline(width=24)
    lines = text.splitlines()
    assert "phase" in lines[0]
    assert any("outer" in line for line in lines)
    assert any("  inner" in line for line in lines)  # indented by depth


def test_timeline_empty():
    assert SpanRecorder().timeline() == "(no spans)"


def test_span_dataclass_defaults():
    sp = Span(name="x", wall_start=0.0)
    assert sp.wall_duration is None and sp.sim_duration is None
    d = sp.to_dict()
    assert d["name"] == "x" and d["wall_s"] is None
