"""Observer: non-perturbation contract, phase spans, exports.

The heart of the observability layer's promise: attaching an Observer
changes *nothing* about a run — same trace digest, same RunResult — and
a run without one executes zero observability code.
"""

import json

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_single
from repro.net.packet import reset_uids
from repro.obs import Observer
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind, TraceRecorder, trace_digest

# the exact golden runs pinned by tests/integration/test_golden_digest.py
from tests.integration.test_golden_digest import GOLDEN


def _digest_with_obs(protocol, topology, seed, **obs_kwargs):
    reset_uids()
    tr = TraceRecorder()
    obs = Observer(**obs_kwargs)
    result = run_single(
        SimulationConfig(protocol, topology, group_size=12, seed=seed),
        trace=tr,
        cache=False,
        obs=obs,
    )
    return trace_digest(tr), result, obs


@pytest.mark.parametrize("protocol,topology,seed", sorted(GOLDEN))
def test_observed_run_keeps_golden_digest(protocol, topology, seed):
    """Attaching the observer leaves the golden sha256 bit-identical."""
    digest, _result, obs = _digest_with_obs(protocol, topology, seed)
    assert digest == GOLDEN[(protocol, topology, seed)]
    assert len(obs.samples) > 0  # the observer genuinely ran


def test_observed_run_result_identical():
    cfg = SimulationConfig("mtmrp", "grid", group_size=12, seed=42)
    reset_uids()
    plain = run_single(cfg, cache=False)
    reset_uids()
    observed = run_single(cfg, cache=False, obs=Observer())
    assert plain == observed


def test_detached_run_pays_nothing():
    """No watchers, no extra events: detached means zero observability work."""
    cfg = SimulationConfig("mtmrp", "grid", group_size=12, seed=42)
    reset_uids()
    tr = TraceRecorder()
    run_single(cfg, trace=tr, cache=False)
    assert tr._watchers == []
    assert "emit" not in tr.__dict__  # class-level emit, never shadowed


def test_observed_run_installs_no_trace_watchers():
    """Counters are derived from totals, not from a per-emit callback."""
    reset_uids()
    tr = TraceRecorder()
    run_single(
        SimulationConfig("mtmrp", "grid", group_size=12, seed=42),
        trace=tr, cache=False, obs=Observer(),
    )
    assert tr._watchers == []


def test_sampler_off_schedules_no_events():
    cfg = SimulationConfig("mtmrp", "grid", group_size=12, seed=42)
    reset_uids()
    tr1 = TraceRecorder()
    run_single(cfg, trace=tr1, cache=False)
    reset_uids()
    tr2 = TraceRecorder()
    obs = Observer(sample=False)
    run_single(cfg, trace=tr2, cache=False, obs=obs)
    assert obs.sampler is None and obs.samples == []
    # counters and spans still work without the sampler
    assert obs.registry.counters["tx"] > 0
    assert [sp.name for sp in obs.spans.spans] == [
        "prefix-build", "route-discovery", "data-delivery",
    ]


def test_phase_spans_cover_the_run():
    _digest, _result, obs = _digest_with_obs("mtmrp", "grid", 42)
    names = [sp.name for sp in obs.spans.spans]
    assert names == ["prefix-build", "route-discovery", "data-delivery"]
    route = obs.spans.spans[1]
    data = obs.spans.spans[2]
    assert route.sim_end == data.sim_start  # phases abut
    assert route.sim_duration > 0 and data.sim_duration > 0
    assert all(sp.wall_duration >= 0 for sp in obs.spans.spans)
    assert route.meta["protocol"] == "mtmrp"


def test_hello_warmup_span_present_when_hello_phase():
    reset_uids()
    cfg = SimulationConfig(
        "mtmrp", "grid", group_size=8, seed=7,
        hello_phase=True, hello_warmup=3.0,
    )
    obs = Observer()
    run_single(cfg, cache=False, obs=obs)
    names = [sp.name for sp in obs.spans.spans]
    assert names[:2] == ["prefix-build", "hello-warmup"]
    warmup = obs.spans.spans[1]
    assert warmup.sim_duration == pytest.approx(3.0)


def test_double_attach_raises():
    obs = Observer()
    obs.attach(Simulator(seed=1))
    with pytest.raises(RuntimeError):
        obs.attach(Simulator(seed=2))


def test_finish_before_attach_raises():
    with pytest.raises(RuntimeError):
        Observer().finish()


def test_registry_gauges_populated_after_run():
    _digest, result, obs = _digest_with_obs("mtmrp", "grid", 42)
    g = obs.registry.gauges
    assert g["energy_joules"] == pytest.approx(result.energy_joules)
    assert g["frames_sent"] > 0
    assert g["forwarders"] >= len(result.transmitters)
    assert "pending_events" in g


def test_fault_recovery_span_detection():
    """A RouteError window opens a recovery span; a delivery closes it."""
    sim = Simulator(seed=1)
    obs = Observer(window=1.0).attach(sim)
    trace = sim.trace
    sim.schedule(1.5, lambda: trace.emit(sim.now, TraceKind.TX, 3, "RouteError"))
    sim.schedule(3.5, lambda: trace.emit(sim.now, TraceKind.DELIVER, 7, "DataPacket"))
    sim.schedule(5.0, lambda: None)
    sim.run(until=5.0)
    obs.finish()
    assert obs.recovery_spans == [(1.0, 4.0)]  # window-granular bounds
    rec = [sp for sp in obs.spans.spans if sp.name == "fault-recovery"]
    assert len(rec) == 1
    assert rec[0].sim_start == 1.0 and rec[0].sim_end == 4.0
    assert rec[0].meta["granularity"] == 1.0


def test_unrecovered_fault_closed_by_finish():
    sim = Simulator(seed=1)
    obs = Observer(window=1.0).attach(sim)
    trace = sim.trace
    sim.schedule(0.5, lambda: trace.emit(sim.now, TraceKind.TX, 3, "RouteError"))
    sim.schedule(2.0, lambda: None)
    sim.run(until=2.0)
    obs.finish()
    assert len(obs.recovery_spans) == 1
    start, end = obs.recovery_spans[0]
    assert start == 0.0 and end == 2.0  # closed at end-of-run


def test_on_sample_callback_receives_windows():
    seen = []
    reset_uids()
    obs = Observer(window=0.5, on_sample=seen.append)
    run_single(
        SimulationConfig("mtmrp", "grid", group_size=12, seed=42),
        cache=False, obs=obs,
    )
    assert seen == obs.samples and len(seen) > 0


def test_export_writes_every_format(tmp_path):
    _digest, _result, obs = _digest_with_obs("mtmrp", "grid", 42)
    out = obs.export(tmp_path / "obs")
    assert set(out) == {
        "counters.prom", "counters.json", "samples.jsonl",
        "spans.jsonl", "spans_chrome.json",
    }
    from repro.obs import parse_prometheus_text

    prom = parse_prometheus_text(out["counters.prom"].read_text())
    assert prom["repro_tx"] > 0
    counters = json.loads(out["counters.json"].read_text())
    assert counters["counters"]["tx"] == prom["repro_tx"]
    samples = [json.loads(l) for l in out["samples.jsonl"].read_text().splitlines() if l]
    assert len(samples) == len(obs.samples)
    spans = [json.loads(l) for l in out["spans.jsonl"].read_text().splitlines() if l]
    assert {s["name"] for s in spans} == {
        "prefix-build", "route-discovery", "data-delivery",
    }
    chrome = json.loads(out["spans_chrome.json"].read_text())
    assert chrome["traceEvents"]


def test_observed_runs_never_cached(tmp_path):
    """An observed run must execute, not replay a cache hit."""
    cfg = SimulationConfig("mtmrp", "grid", group_size=10, seed=5)
    reset_uids()
    run_single(cfg, cache=tmp_path)  # populate the cache
    reset_uids()
    obs = Observer()
    run_single(cfg, cache=tmp_path, obs=obs)
    assert len(obs.samples) > 0  # really ran


def test_observed_runs_skip_warm_start():
    """warm_start is ignored under an observer (state not in snapshots)."""
    cfg = SimulationConfig(
        "mtmrp", "grid", group_size=8, seed=7,
        hello_phase=True, hello_warmup=2.0,
    )
    reset_uids()
    plain = run_single(cfg, cache=False)
    reset_uids()
    obs = Observer()
    observed = run_single(cfg, cache=False, obs=obs, warm_start=True)
    assert plain == observed
    # the hello-warmup span proves the prefix was built cold, not forked
    assert "hello-warmup" in [sp.name for sp in obs.spans.spans]
