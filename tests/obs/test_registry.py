"""CounterRegistry: trace-derived counters, gauges, exports."""

import json

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_single
from repro.net.packet import reset_uids
from repro.obs import (
    CounterRegistry,
    counters_from_trace,
    counters_json,
    parse_prometheus_text,
    prometheus_text,
)
from repro.sim.trace import TraceKind, TraceRecorder


def _emit_fixture(trace):
    trace.emit(0.0, TraceKind.TX, 1, "JoinQuery")
    trace.emit(0.1, TraceKind.TX, 2, "JoinQuery")
    trace.emit(0.2, TraceKind.TX, 2, "DataPacket")
    trace.emit(0.3, TraceKind.RX, 3, "DataPacket")
    trace.emit(0.4, TraceKind.DELIVER, 3, "DataPacket")
    trace.emit(0.5, TraceKind.NOTE, 2, "PathHandover")
    trace.emit(0.6, TraceKind.MARK, 2, "Forwarder")
    trace.emit(0.7, TraceKind.TX, 4, "RouteError")


def test_counters_from_trace_names_and_values():
    trace = TraceRecorder()
    _emit_fixture(trace)
    c = counters_from_trace(trace)
    assert c["tx"] == 4  # 2 JoinQuery + 1 Data + 1 RouteError
    assert c["join_query_tx"] == 2
    assert c["data_tx"] == 1
    assert c["route_error_tx"] == 1
    assert c["rx"] == 1
    assert c["delivers"] == 1
    assert c["phs_prunes"] == 1
    assert c["forwarder_marks"] == 1
    assert c["collisions"] == 0


def test_counters_work_in_counters_only_mode():
    trace = TraceRecorder(counters_only=True)
    _emit_fixture(trace)
    assert trace.records == []
    c = counters_from_trace(trace)
    assert c["tx"] == 4 and c["delivers"] == 1


def test_registry_refresh_from_live_run():
    reset_uids()
    reg = CounterRegistry()
    cfg = SimulationConfig(protocol="mtmrp", topology="grid", group_size=10, seed=3)
    trace = TraceRecorder()
    result = run_single(cfg, trace=trace, cache=False)
    reg.bind()  # no-op binding is allowed
    reg._trace = trace
    reg.refresh()
    assert reg.counters["join_query_tx"] == result.join_query_tx
    assert reg.counters["join_reply_tx"] == result.join_reply_tx
    assert reg.counters["delivers"] >= result.delivered


def test_inc_and_set_gauge():
    reg = CounterRegistry()
    reg.inc("tx", 3)
    reg.inc("custom_metric")
    reg.set_gauge("depth", 7)
    assert reg.counters["tx"] == 3
    assert reg.counters["custom_metric"] == 1
    assert reg.gauges["depth"] == 7.0
    flat = reg.as_dict()
    assert flat["custom_metric"] == 1 and flat["depth"] == 7.0


def test_table_lists_counters_and_gauges():
    reg = CounterRegistry()
    reg.inc("tx", 5)
    reg.set_gauge("energy_joules", 0.25)
    text = reg.table()
    assert "tx" in text and "5" in text
    assert "energy_joules" in text and "(gauge)" in text


def test_prometheus_text_format_and_roundtrip():
    reg = CounterRegistry()
    reg.inc("tx", 42)
    reg.set_gauge("energy_joules", 1.5)
    text = prometheus_text(reg, labels={"protocol": "mtmrp", "seed": 7})
    assert '# TYPE repro_tx counter' in text
    assert '# TYPE repro_energy_joules gauge' in text
    assert 'protocol="mtmrp"' in text and 'seed="7"' in text
    parsed = parse_prometheus_text(text)
    assert parsed["repro_tx"] == 42.0
    assert parsed["repro_energy_joules"] == 1.5


def test_prometheus_label_escaping():
    reg = CounterRegistry()
    reg.inc("tx")
    text = prometheus_text(reg, labels={"note": 'say "hi" \\ there'})
    assert r'\"hi\"' in text
    parse_prometheus_text(text)  # still parseable


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus_text("not-a-metric-line-without-value\n ")


def test_counters_json_carries_metadata():
    reg = CounterRegistry()
    reg.inc("tx", 9)
    payload = json.loads(counters_json(reg, seed=5, protocol="odmrp"))
    assert payload["seed"] == 5 and payload["protocol"] == "odmrp"
    assert payload["counters"]["tx"] == 9
    assert "gauges" in payload


# --------------------------------------------------------------------- #
# per-session delivery attribution
# --------------------------------------------------------------------- #
def _emit_session_fixture(trace):
    # DELIVER details carry the flow key (source, group, seq)
    trace.emit(0.1, TraceKind.DELIVER, 3, "DataPacket", (0, 1, 0))
    trace.emit(0.2, TraceKind.DELIVER, 4, "DataPacket", (0, 1, 1))
    trace.emit(0.3, TraceKind.DELIVER, 5, "DataPacket", (7, 2, 0))
    trace.emit(0.4, TraceKind.DELIVER, 5, "DataPacket", None)  # no flow info
    trace.emit(0.5, TraceKind.TX, 0, "DataPacket", (0, 1, 0))  # not a DELIVER


def test_session_counters_attribute_delivers_per_flow():
    from repro.obs import session_counters

    trace = TraceRecorder()
    _emit_session_fixture(trace)
    assert session_counters(trace) == {
        "session_delivers.0.1": 2,
        "session_delivers.7.2": 1,
    }


def test_session_counters_empty_without_stored_records():
    from repro.obs import session_counters

    trace = TraceRecorder(counters_only=True)
    _emit_session_fixture(trace)
    assert session_counters(trace) == {}


def test_refresh_merges_session_counters():
    reg = CounterRegistry()
    trace = TraceRecorder()
    _emit_session_fixture(trace)
    reg._trace = trace
    reg.refresh()
    assert reg.counters["session_delivers.0.1"] == 2
    assert reg.counters["session_delivers.7.2"] == 1
    # the flat aggregate still counts every delivery, attributed or not
    assert reg.counters["delivers"] == 4


def test_session_counters_from_live_multisession_run():
    from repro.obs import session_counters
    from repro.traffic.spec import SessionSpec

    reset_uids()
    cfg = SimulationConfig(
        protocol="mtmrp", topology="grid", grid_nx=5, grid_ny=5,
        side=100.0, seed=13, mac="ideal",
        sessions=(
            SessionSpec(source=0, group=1, group_size=4, n_packets=2),
            SessionSpec(source=24, group=2, group_size=4, start=0.4, n_packets=2),
        ),
    )
    trace = TraceRecorder()
    result = run_single(cfg, trace=trace, cache=False)
    c = session_counters(trace)
    assert set(c) == {"session_delivers.0.1", "session_delivers.24.2"}
    # every reached receiver delivers each of its session's packets
    per_flow = {s.flow: s.delivered for s in result.traffic.sessions}
    assert c["session_delivers.0.1"] == 2 * per_flow[(0, 1)]
    assert c["session_delivers.24.2"] == 2 * per_flow[(24, 2)]
