"""The observability tax: <=10% on the benchmark's full-round case.

Two guards on the same workload (``full_mtmrp_round_grid`` from
``repro.experiments.bench``: MTMRP, grid, 20 receivers, seed 5):

* **identity** — the observed run's trace sha256 is byte-identical to
  the detached run's (deterministic; the real contract);
* **overhead** — min-of-N wall time with the observer attached stays
  within 10% of detached.  Timing on a shared machine is noisy, so the
  bound is checked over a few attempts and the *best* ratio counts —
  a genuine regression fails every attempt, a scheduler hiccup doesn't.
"""

import time

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_single
from repro.net.packet import reset_uids
from repro.obs import Observer
from repro.sim.trace import TraceRecorder, trace_digest

#: the exact config bench.py times as full_mtmrp_round_grid
BENCH_CFG = SimulationConfig(protocol="mtmrp", topology="grid", group_size=20, seed=5)

#: allowed observed/detached wall-time ratio
MAX_OVERHEAD = 1.10


def _run(obs=None, trace=None):
    reset_uids()
    return run_single(BENCH_CFG, cache=False, obs=obs, trace=trace)


def test_observed_trace_sha256_byte_identical():
    t_plain = TraceRecorder()
    _run(trace=t_plain)
    t_obs = TraceRecorder()
    _run(obs=Observer(window=0.25), trace=t_obs)
    assert trace_digest(t_obs) == trace_digest(t_plain)


def _best_of(fn, repeat):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.slow
def test_attached_overhead_within_ten_percent():
    _run()  # warm every import/cache outside the timed region
    _run(obs=Observer(window=0.25))
    best_ratio = float("inf")
    for _attempt in range(3):
        detached = _best_of(lambda: _run(), 5)
        attached = _best_of(lambda: _run(obs=Observer(window=0.25)), 5)
        best_ratio = min(best_ratio, attached / detached)
        if best_ratio <= MAX_OVERHEAD:
            break
    assert best_ratio <= MAX_OVERHEAD, (
        f"observer overhead {(best_ratio - 1) * 100:.1f}% exceeds "
        f"{(MAX_OVERHEAD - 1) * 100:.0f}% on full_mtmrp_round_grid"
    )
