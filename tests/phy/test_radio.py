"""Unit tests for the radio state machine and capture model."""

from repro.phy.radio import Radio, RadioState


def mk():
    return Radio(node_id=0, capture_threshold_db=10.0)


class TestSingleReception:
    def test_clean_reception_survives(self):
        r = mk()
        rec = r.begin_reception("f", now=0.0, duration=1.0, power=1.0)
        assert r.finish_reception(rec, now=1.0) is True

    def test_state_transitions(self):
        r = mk()
        assert r.state is RadioState.IDLE
        rec = r.begin_reception("f", 0.0, 1.0, 1.0)
        assert r.state is RadioState.RX
        r.finish_reception(rec, 1.0)
        assert r.state is RadioState.IDLE


class TestCollisions:
    def test_comparable_powers_destroy_both(self):
        r = mk()
        a = r.begin_reception("a", 0.0, 1.0, 1.0)
        b = r.begin_reception("b", 0.5, 1.0, 1.0)
        assert r.finish_reception(a, 1.0) is False
        assert r.finish_reception(b, 1.5) is False

    def test_first_frame_capture_survives_weak_interferer(self):
        """ns-2 semantics: locked frame survives a >=10 dB weaker overlap."""
        r = mk()
        a = r.begin_reception("a", 0.0, 1.0, power=1.0)
        b = r.begin_reception("b", 0.5, 1.0, power=0.05)  # -13 dB
        assert r.finish_reception(a, 1.0) is True
        assert r.finish_reception(b, 1.5) is False

    def test_stronger_newcomer_captures(self):
        r = mk()
        a = r.begin_reception("a", 0.0, 1.0, power=0.05)
        b = r.begin_reception("b", 0.5, 1.0, power=1.0)  # +13 dB
        assert r.finish_reception(a, 1.0) is False
        assert r.finish_reception(b, 1.5) is True

    def test_third_frame_compares_against_new_lock(self):
        r = mk()
        a = r.begin_reception("a", 0.0, 2.0, power=1.0)
        b = r.begin_reception("b", 0.5, 2.0, power=0.01)  # doomed, a stays locked
        c = r.begin_reception("c", 1.0, 2.0, power=0.5)  # comparable to a: both die
        assert r.finish_reception(a, 2.0) is False
        assert r.finish_reception(b, 2.5) is False
        assert r.finish_reception(c, 3.0) is False

    def test_non_overlapping_receptions_both_survive(self):
        r = mk()
        a = r.begin_reception("a", 0.0, 1.0, 1.0)
        assert r.finish_reception(a, 1.0) is True
        b = r.begin_reception("b", 2.0, 1.0, 1.0)
        assert r.finish_reception(b, 3.0) is True


class TestHalfDuplex:
    def test_arrival_during_tx_is_lost(self):
        r = mk()
        r.begin_tx(0.0, 1.0)
        rec = r.begin_reception("f", 0.5, 1.0, 1.0)
        assert rec.intact is False

    def test_begin_tx_dooms_in_flight_reception(self):
        r = mk()
        rec = r.begin_reception("f", 0.0, 2.0, 1.0)
        r.begin_tx(0.5, 0.5)
        assert rec.intact is False

    def test_end_tx_restores_idle(self):
        r = mk()
        r.begin_tx(0.0, 1.0)
        assert r.state is RadioState.TX
        r.end_tx(1.0)
        assert r.state is RadioState.IDLE


class TestCarrierSense:
    def test_idle_medium(self):
        assert mk().medium_busy(0.0) is False

    def test_busy_during_reception(self):
        r = mk()
        r.begin_reception("f", 0.0, 1.0, 1.0)
        assert r.medium_busy(0.5) is True
        assert r.medium_busy(1.5) is False

    def test_busy_during_own_tx(self):
        r = mk()
        r.begin_tx(0.0, 1.0)
        assert r.medium_busy(0.5) is True

    def test_busy_until_reports_latest_end(self):
        r = mk()
        r.begin_reception("a", 0.0, 1.0, 1.0)
        r.begin_reception("b", 0.5, 1.0, 1.0)
        assert r.busy_until(0.6) == 1.5

    def test_busy_until_with_tx(self):
        r = mk()
        r.begin_tx(0.0, 2.0)
        assert r.busy_until(0.1) == 2.0
