"""Unit tests for the energy model."""

import pytest

from repro.phy.energy import EnergyAccount, EnergyModel


def test_tx_energy_scales_with_bits():
    m = EnergyModel()
    assert m.tx_energy(2000) == pytest.approx(2 * m.tx_energy(1000))


def test_airtime():
    m = EnergyModel(bitrate_bps=1e6)
    assert m.airtime(1000) == pytest.approx(1e-3)


def test_rx_costs_more_than_tx_for_cc2420_defaults():
    """CC2420-class radios famously spend more on RX than TX."""
    m = EnergyModel()
    assert m.rx_energy(1000) > m.tx_energy(1000)


def test_account_accumulates():
    a = EnergyAccount()
    a.charge_tx(0.5)
    a.charge_rx(0.25)
    assert a.consumed == pytest.approx(0.75)
    assert a.remaining == pytest.approx(a.initial_joules - 0.75)


def test_account_depletion_flag():
    a = EnergyAccount(initial_joules=1.0)
    a.charge_tx(0.6)
    assert not a.depleted
    a.charge_rx(0.5)
    assert a.depleted
    assert a.remaining == 0.0
