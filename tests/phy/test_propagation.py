"""Unit tests for propagation models (Eq. 5 and friends)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.propagation import (
    FreeSpace,
    LogDistance,
    TwoRayGround,
    range_to_threshold,
)


class TestTwoRayGround:
    def test_eq5_closed_form(self):
        """Pr = Pt*Gt*Gr*ht^2*hr^2 / (d^4 * L) with the paper's parameters."""
        m = TwoRayGround()  # Gt=Gr=1, ht=hr=1.5, L=1, beta=4
        pt = 0.5
        d = 10.0
        expected = pt * 1.5**2 * 1.5**2 / d**4
        assert m.receive_power(pt, d) == pytest.approx(expected)

    def test_power_decreases_with_distance(self):
        m = TwoRayGround()
        p = [m.receive_power(1.0, d) for d in (1, 10, 40, 100)]
        assert p == sorted(p, reverse=True)

    def test_fourth_power_falloff(self):
        m = TwoRayGround()
        assert m.receive_power(1.0, 20.0) / m.receive_power(1.0, 40.0) == pytest.approx(16.0)

    def test_max_range_inverts_receive_power(self):
        m = TwoRayGround()
        thr = m.receive_power(1.0, 40.0)
        assert m.max_range(1.0, thr) == pytest.approx(40.0)

    def test_vectorised_matches_scalar(self):
        m = TwoRayGround()
        ds = np.array([5.0, 10.0, 20.0])
        vec = m.receive_power(2.0, ds)
        for d, v in zip(ds, vec):
            assert v == pytest.approx(m.receive_power(2.0, float(d)))

    @given(st.floats(min_value=1.0, max_value=1e3), st.floats(min_value=0.01, max_value=10))
    def test_reception_iff_within_range_property(self, d, pt):
        """Property: with threshold derived for range R, reception succeeds
        exactly when d <= R (the paper's disk model)."""
        m = TwoRayGround()
        r = 40.0
        thr = range_to_threshold(m, pt, r)
        received = m.receive_power(pt, d) >= thr
        assert received == (d <= r)


class TestFreeSpace:
    def test_inverse_square(self):
        m = FreeSpace()
        assert m.receive_power(1.0, 10.0) / m.receive_power(1.0, 20.0) == pytest.approx(4.0)

    def test_max_range_closed_form(self):
        m = FreeSpace()
        thr = m.receive_power(1.0, 100.0)
        assert m.max_range(1.0, thr) == pytest.approx(100.0)


class TestLogDistance:
    def test_deterministic_without_shadowing(self):
        m = LogDistance(path_loss_exponent=3.0)
        assert m.receive_power(1.0, 8.0) / m.receive_power(1.0, 16.0) == pytest.approx(8.0)

    def test_shadowing_requires_rng(self):
        m = LogDistance(shadowing_sigma_db=4.0)
        with pytest.raises(ValueError):
            m.receive_power(1.0, 10.0)

    def test_shadowing_randomises_power(self):
        rng = np.random.default_rng(3)
        m = LogDistance(shadowing_sigma_db=6.0, rng=rng)
        vals = {float(m.receive_power(1.0, 10.0)) for _ in range(10)}
        assert len(vals) > 1

    def test_median_range(self):
        m = LogDistance(path_loss_exponent=2.0)
        thr = m.receive_power(1.0, 50.0)
        assert m.max_range(1.0, thr) == pytest.approx(50.0)


def test_range_to_threshold_rejects_nonpositive():
    with pytest.raises(ValueError):
        range_to_threshold(TwoRayGround(), 1.0, 0.0)


def test_generic_bisection_max_range():
    """The base-class bisection agrees with the closed form."""

    class NoClosedForm(TwoRayGround):
        def max_range(self, tx_power, rx_threshold):
            from repro.phy.propagation import PropagationModel

            return PropagationModel.max_range(self, tx_power, rx_threshold)

    m = NoClosedForm()
    thr = m.receive_power(1.0, 40.0)
    assert m.max_range(1.0, thr) == pytest.approx(40.0, rel=1e-6)


def test_propagation_delay_speed_of_light():
    m = TwoRayGround()
    assert m.propagation_delay(299_792_458.0) == pytest.approx(1.0)
