"""Tests for median power and fading-calibrated thresholds."""

import numpy as np
import pytest

from repro.phy.propagation import LogDistance, TwoRayGround, range_to_threshold


def tworay_matched_logdistance(sigma=0.0, rng=None):
    """LogDistance calibrated so its median equals TwoRayGround exactly."""
    return LogDistance(
        reference_distance=1.0,
        reference_power_factor=(1.5 * 1.5) ** 2,
        path_loss_exponent=4.0,
        shadowing_sigma_db=sigma,
        rng=rng,
    )


def test_median_equals_receive_power_for_deterministic_models():
    m = TwoRayGround()
    for d in (5.0, 20.0, 40.0):
        assert m.median_receive_power(1.0, d) == m.receive_power(1.0, d)


def test_matched_logdistance_median_equals_tworay():
    tworay = TwoRayGround()
    logd = tworay_matched_logdistance()
    for d in (1.0, 10.0, 40.0, 100.0):
        assert logd.median_receive_power(1.0, d) == pytest.approx(
            tworay.receive_power(1.0, d)
        )


def test_threshold_from_median_not_a_fading_draw():
    """range_to_threshold must be deterministic even for fading models."""
    rng = np.random.default_rng(1)
    m = tworay_matched_logdistance(sigma=6.0, rng=rng)
    t1 = range_to_threshold(m, 1.0, 40.0)
    t2 = range_to_threshold(m, 1.0, 40.0)
    assert t1 == t2  # no random draw consumed
    assert t1 == pytest.approx(range_to_threshold(TwoRayGround(), 1.0, 40.0))


def test_shadowed_power_fluctuates_around_median():
    rng = np.random.default_rng(2)
    m = tworay_matched_logdistance(sigma=4.0, rng=rng)
    median = m.median_receive_power(1.0, 40.0)
    draws = np.array([m.receive_power(1.0, 40.0) for _ in range(400)])
    # log-normal in dB: the *median* of draws is the deterministic value
    assert np.median(draws) == pytest.approx(median, rel=0.25)
    assert (draws > median).mean() == pytest.approx(0.5, abs=0.1)


def test_shadowing_fraction_of_nominal_links_lost():
    """At the exact nominal range, a shadowed link is up ~half the time."""
    rng = np.random.default_rng(3)
    m = tworay_matched_logdistance(sigma=4.0, rng=rng)
    thr = range_to_threshold(m, 1.0, 40.0)
    up = np.array([m.receive_power(1.0, 40.0) >= thr for _ in range(400)])
    assert 0.35 <= up.mean() <= 0.65
