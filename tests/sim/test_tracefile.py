"""Tests for trace file export/import."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.sim.trace import TraceKind, TraceRecord, TraceRecorder
from repro.sim.tracefile import format_record, parse_record, read_trace, write_trace


def _sample_trace() -> TraceRecorder:
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 0, "JoinQuery", 1)
    t.emit(0.0012345, TraceKind.RX, 3, "JoinQuery", 1)
    t.emit(0.5, TraceKind.MARK, 3, "Forwarder", (0, 1, 0))
    t.emit(1.0, TraceKind.DELIVER, 7, "DataPacket", (0, 1, 0))
    t.emit(1.5, TraceKind.DROP, 7, "DataPacket", "dup")
    t.emit(2.0, TraceKind.NOTE, 2, None, None)
    return t


def test_roundtrip_file(tmp_path):
    t = _sample_trace()
    p = tmp_path / "run.trace"
    n = write_trace(t, p)
    assert n == len(t)
    back = read_trace(p)
    assert back.records == t.records
    assert back.counts == t.counts


def test_roundtrip_stream():
    t = _sample_trace()
    buf = io.StringIO()
    write_trace(t, buf)
    buf.seek(0)
    back = read_trace(buf)
    assert back.records == t.records


def test_format_is_columnar():
    line = format_record(TraceRecord(1.5, TraceKind.TX, 4, "DataPacket", 9))
    assert line == "tx 1.5 4 DataPacket 9"


def test_time_roundtrips_bit_exactly():
    t = 0.0001620741253544885
    rec = parse_record(format_record(TraceRecord(t, TraceKind.RX, 1, "P", 0)))
    assert rec.time == t


def test_parse_tuple_detail():
    rec = parse_record('mark 0.5 3 Forwarder [0,1,0]')
    assert rec.detail == (0, 1, 0)


def test_parse_missing_fields():
    rec = parse_record("note 2.0 2 - -")
    assert rec.packet_type is None and rec.detail is None


def test_malformed_line_rejected():
    with pytest.raises(ValueError):
        parse_record("tx 1.0 4")


def test_comments_and_blanks_skipped(tmp_path):
    p = tmp_path / "t.trace"
    p.write_text("# header\n\ntx 1.000000000 0 DataPacket 5\n")
    back = read_trace(p)
    assert len(back) == 1


@given(
    time=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    node=st.integers(min_value=0, max_value=10_000),
    kind=st.sampled_from(list(TraceKind)),
    detail=st.one_of(st.none(), st.integers(-1000, 1000), st.text(max_size=10),
                     st.tuples(st.integers(0, 9), st.integers(0, 9))),
)
def test_record_roundtrip_property(time, node, kind, detail):
    """Property: format -> parse is the identity up to float formatting."""
    rec = TraceRecord(time, kind, node, "P", detail)
    back = parse_record(format_record(rec))
    assert back.kind == rec.kind and back.node == rec.node
    assert back.detail == rec.detail
    assert back.time == pytest.approx(rec.time, abs=1e-9)


def test_metrics_from_reloaded_trace(tmp_path):
    """A trace written to disk supports the same metric queries."""
    t = _sample_trace()
    p = tmp_path / "run.trace"
    write_trace(t, p)
    back = read_trace(p)
    assert back.count(TraceKind.TX, "JoinQuery") == 1
    assert back.nodes_with(TraceKind.DELIVER) == {7}
