"""Unit tests for named random streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RngRegistry


def test_same_key_returns_same_generator():
    reg = RngRegistry(1)
    assert reg.stream("mac", 3) is reg.stream("mac", 3)


def test_different_keys_are_independent_objects():
    reg = RngRegistry(1)
    assert reg.stream("mac", 3) is not reg.stream("mac", 4)


def test_reproducible_across_registries():
    a = RngRegistry(42).stream("proto", 7).uniform(size=10)
    b = RngRegistry(42).stream("proto", 7).uniform(size=10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").uniform(size=10)
    b = RngRegistry(2).stream("x").uniform(size=10)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(5)
    _ = reg1.stream("a")
    v1 = reg1.stream("b").uniform(size=5)
    reg2 = RngRegistry(5)
    v2 = reg2.stream("b").uniform(size=5)  # "b" created first here
    assert np.array_equal(v1, v2)


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        RngRegistry(0).stream()


def test_spawn_run_seeds_deterministic():
    assert RngRegistry(9).spawn_run_seeds(10) == RngRegistry(9).spawn_run_seeds(10)


def test_spawn_run_seeds_distinct():
    seeds = RngRegistry(9).spawn_run_seeds(50)
    assert len(set(seeds)) == 50


def test_spawn_run_seeds_nonnegative():
    assert all(s >= 0 for s in RngRegistry(3).spawn_run_seeds(20))


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=10))
def test_stream_stability_property(seed, name):
    """Property: first draw of a stream is a pure function of (seed, key)."""
    a = RngRegistry(seed).stream(name).random()
    b = RngRegistry(seed).stream(name).random()
    assert a == b


def test_recycled_generator_is_rewound():
    """A pooled Generator (returned when a registry is garbage-collected)
    must restart its stream exactly, not continue where the old run left
    off — the pool is a pure allocation optimisation."""
    reg = RngRegistry(123)
    expect = reg.stream("mac", 1).uniform(size=8)
    del reg  # retires the generator into the pool
    got = RngRegistry(123).stream("mac", 1).uniform(size=8)
    assert np.array_equal(expect, got)


def test_live_registries_never_share_a_generator():
    """The pool hands out a generator to at most one registry at a time;
    two live registries on the same (seed, key) must not alias streams."""
    a = RngRegistry(7)
    b = RngRegistry(7)
    ga = a.stream("proto", 2)
    gb = b.stream("proto", 2)
    assert ga is not gb
    va = ga.uniform(size=6)
    vb = gb.uniform(size=6)
    assert np.array_equal(va, vb)  # same seed: same values, own cursors
