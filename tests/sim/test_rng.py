"""Unit tests for named random streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RngRegistry


def test_same_key_returns_same_generator():
    reg = RngRegistry(1)
    assert reg.stream("mac", 3) is reg.stream("mac", 3)


def test_different_keys_are_independent_objects():
    reg = RngRegistry(1)
    assert reg.stream("mac", 3) is not reg.stream("mac", 4)


def test_reproducible_across_registries():
    a = RngRegistry(42).stream("proto", 7).uniform(size=10)
    b = RngRegistry(42).stream("proto", 7).uniform(size=10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").uniform(size=10)
    b = RngRegistry(2).stream("x").uniform(size=10)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(5)
    _ = reg1.stream("a")
    v1 = reg1.stream("b").uniform(size=5)
    reg2 = RngRegistry(5)
    v2 = reg2.stream("b").uniform(size=5)  # "b" created first here
    assert np.array_equal(v1, v2)


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        RngRegistry(0).stream()


def test_spawn_run_seeds_deterministic():
    assert RngRegistry(9).spawn_run_seeds(10) == RngRegistry(9).spawn_run_seeds(10)


def test_spawn_run_seeds_distinct():
    seeds = RngRegistry(9).spawn_run_seeds(50)
    assert len(set(seeds)) == 50


def test_spawn_run_seeds_nonnegative():
    assert all(s >= 0 for s in RngRegistry(3).spawn_run_seeds(20))


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=10))
def test_stream_stability_property(seed, name):
    """Property: first draw of a stream is a pure function of (seed, key)."""
    a = RngRegistry(seed).stream(name).random()
    b = RngRegistry(seed).stream(name).random()
    assert a == b


def test_recycled_generator_is_rewound():
    """A pooled Generator (returned when a registry is garbage-collected)
    must restart its stream exactly, not continue where the old run left
    off — the pool is a pure allocation optimisation."""
    reg = RngRegistry(123)
    expect = reg.stream("mac", 1).uniform(size=8)
    del reg  # retires the generator into the pool
    got = RngRegistry(123).stream("mac", 1).uniform(size=8)
    assert np.array_equal(expect, got)


def test_live_registries_never_share_a_generator():
    """The pool hands out a generator to at most one registry at a time;
    two live registries on the same (seed, key) must not alias streams."""
    a = RngRegistry(7)
    b = RngRegistry(7)
    ga = a.stream("proto", 2)
    gb = b.stream("proto", 2)
    assert ga is not gb
    va = ga.uniform(size=6)
    vb = gb.uniform(size=6)
    assert np.array_equal(va, vb)  # same seed: same values, own cursors


# --------------------------------------------------------------------- #
# seed-batched streams (the Monte Carlo batch kernel's rng facade)
# --------------------------------------------------------------------- #
from repro.sim.rng import BatchedStreams  # noqa: E402


def test_batched_matrix_draw_equals_scalar_draws():
    seeds = [0, 1, 42, 999]
    bs = BatchedStreams(seeds)
    got = bs.uniform_matrix(("hello", 7), 0.0, 0.1)
    for s, seed in enumerate(seeds):
        assert got[s] == RngRegistry(seed).stream("hello", 7).uniform(0.0, 0.1)


@given(
    st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=4,
             unique=True),
    st.data(),
)
def test_block_commit_lands_on_exact_scalar_state(seeds, data):
    """Property: speculate-then-commit is draw-for-draw scalar execution.

    For any seeds and per-seed commit counts, the served prefix of a
    block must equal the scalar draw sequence, and the generator must end
    in the state a scalar kernel would leave after exactly that many
    draws — so every *later* draw on the stream stays bit-identical too.
    """
    n = data.draw(st.integers(min_value=1, max_value=12), label="block size")
    counts = [
        data.draw(st.integers(min_value=0, max_value=n), label=f"count[{i}]")
        for i in range(len(seeds))
    ]
    bs = BatchedStreams(seeds)
    first = bs.uniform_matrix(("hello", 3), 0.0, 0.1)
    block = bs.uniform_block(("hello", 3), -0.1, 0.1, n)
    block.commit(counts)
    tails = [bs.stream(s, "hello", 3).uniform(size=3) for s in range(len(seeds))]

    for s, seed in enumerate(seeds):
        g = RngRegistry(seed).stream("hello", 3)
        assert first[s] == g.uniform(0.0, 0.1)
        expect = g.uniform(-0.1, 0.1, size=counts[s])
        assert np.array_equal(block.matrix[s, : counts[s]], expect)
        assert np.array_equal(tails[s], g.uniform(size=3))


def test_interleaved_batched_and_scalar_keys_stay_paired():
    """Draws on one key never perturb another key's stream, batched or not."""
    seeds = [5, 6]
    bs = BatchedStreams(seeds)
    bs.uniform_matrix(("hello", 0), 0.0, 0.1)
    block = bs.uniform_block(("hello", 1), -0.1, 0.1, 8)
    block.commit([3, 0])
    other = [bs.stream(s, "mac", 2).uniform(size=4) for s in range(2)]
    for s, seed in enumerate(seeds):
        ref = RngRegistry(seed).stream("mac", 2).uniform(size=4)
        assert np.array_equal(other[s], ref)


def test_batched_streams_rewind_pooled_generators():
    """Pool checkout/return ordering cannot leak a stale cursor.

    A retired registry parks its (advanced) generators in the pool; a
    ``BatchedStreams`` built afterwards with the same seeds checks them
    out and must see each stream rewound to its initial state.
    """
    seeds = [101, 102, 103]
    expect = {}
    for seed in seeds:
        reg = RngRegistry(seed)
        expect[seed] = reg.stream("hello", 0).uniform(size=5)
        del reg  # retire the advanced generator into the pool
    bs = BatchedStreams(seeds)
    got = bs.uniform_matrix(("hello", 0), 0.0, 1.0)
    for s, seed in enumerate(seeds):
        assert got[s] == expect[seed][0]


def test_registry_handoff_continues_the_batched_stream():
    """``registry(s)`` hands the very streams the batch advanced."""
    bs = BatchedStreams([9])
    head = bs.uniform_matrix(("hello", 4), 0.0, 0.1)
    reg = bs.registry(0)
    cont = reg.stream("hello", 4).uniform(size=3)

    g = RngRegistry(9).stream("hello", 4)
    assert head[0] == g.uniform(0.0, 0.1)
    assert np.array_equal(cont, g.uniform(size=3))
