"""Unit tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import Event, EventQueue


def test_push_pop_ordering_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    times = []
    while q:
        ev = q.pop()
        times.append(ev.time)
    assert times == [1.0, 2.0, 3.0]


def test_fifo_among_equal_times():
    q = EventQueue()
    evs = [q.push(1.0, lambda: None) for _ in range(10)]
    popped = [q.pop() for _ in range(10)]
    assert [e.seq for e in popped] == [e.seq for e in evs]


def test_priority_breaks_time_ties():
    q = EventQueue()
    late = q.push(1.0, lambda: None, priority=5)
    early = q.push(1.0, lambda: None, priority=-5)
    assert q.pop() is early
    assert q.pop() is late


def test_cancel_skips_event():
    q = EventQueue()
    a = q.push(1.0, lambda: None)
    b = q.push(2.0, lambda: None)
    q.cancel(a)
    assert len(q) == 1
    assert q.pop() is b
    assert not q


def test_cancel_is_idempotent():
    q = EventQueue()
    a = q.push(1.0, lambda: None)
    q.cancel(a)
    q.cancel(a)
    assert len(q) == 0


def test_cancelled_event_drops_references():
    called = []
    ev = Event(time=1.0, priority=0, seq=0, fn=called.append, args=(1,))
    ev.cancel()
    assert ev.fn is None and ev.args == ()
    assert not ev.active


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_peek_time_skips_cancelled():
    q = EventQueue()
    a = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(a)
    assert q.peek_time() == 2.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(float("nan"), lambda: None)


def test_clear():
    q = EventQueue()
    for i in range(5):
        q.push(float(i), lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.peek_time() is None


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=200))
def test_pop_order_is_sorted_for_any_push_order(times):
    """Property: pops come out in non-decreasing time order."""
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    out = []
    while q:
        out.append(q.pop().time)
    assert out == sorted(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False), st.booleans()),
        max_size=100,
    )
)
def test_live_count_matches_after_cancellations(items):
    """Property: len(queue) counts exactly the non-cancelled events."""
    q = EventQueue()
    expected = 0
    for t, do_cancel in items:
        ev = q.push(t, lambda: None)
        if do_cancel:
            q.cancel(ev)
        else:
            expected += 1
    assert len(q) == expected
    seen = 0
    while q:
        q.pop()
        seen += 1
    assert seen == expected


def test_push_fire_interleaves_with_push_by_seq():
    """Fire-and-forget entries share the seq counter with cancellable
    ones, so FIFO among equal times holds across both entry shapes."""
    q = EventQueue()
    order = []
    q.push(1.0, order.append, ("cancellable-1",))
    q.push_fire(1.0, order.append, ("fire-1",))
    q.push(1.0, order.append, ("cancellable-2",))
    q.push_fire(1.0, order.append, ("fire-2",))
    assert len(q) == 4
    while q:
        ev = q.pop()
        ev.fn(*ev.args)
    assert order == ["cancellable-1", "fire-1", "cancellable-2", "fire-2"]


def test_push_fire_counts_as_live_and_rejects_nan():
    q = EventQueue()
    q.push_fire(0.5, lambda: None)
    assert len(q) == 1 and bool(q)
    q.pop()
    assert len(q) == 0
    with pytest.raises(ValueError):
        q.push_fire(float("nan"), lambda: None)


def test_push_many_matches_per_item_push():
    def drain(q):
        out = []
        while q:
            ev = q.pop()
            out.append((ev.time, ev.priority, ev.seq, ev.args))
        return out

    items = [(2.0, lambda: None, ("a",)), (1.0, lambda: None, ("b",)),
             (2.0, lambda: None, ("c",))]
    batched = EventQueue()
    batched.push_many(items, priority=3)
    single = EventQueue()
    for t, fn, args in items:
        single.push(t, fn, args, priority=3)
    assert drain(batched) == drain(single)


def test_push_many_rejects_nan_time():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push_many([(1.0, lambda: None, ()), (float("nan"), lambda: None, ())])
