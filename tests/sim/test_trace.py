"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceKind, TraceRecorder


def test_emit_and_count():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "DataPacket", 100)
    t.emit(0.5, TraceKind.TX, 2, "JoinQuery", 101)
    t.emit(1.0, TraceKind.RX, 3, "DataPacket", 100)
    assert t.count(TraceKind.TX) == 2
    assert t.count(TraceKind.TX, "DataPacket") == 1
    assert t.count(TraceKind.RX) == 1
    assert len(t) == 3


def test_filter_by_kind_type_node():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "A")
    t.emit(0.0, TraceKind.TX, 2, "B")
    t.emit(0.0, TraceKind.RX, 1, "A")
    assert len(list(t.filter(kind=TraceKind.TX))) == 2
    assert len(list(t.filter(packet_type="A"))) == 2
    assert len(list(t.filter(node=1))) == 2
    assert len(list(t.filter(kind=TraceKind.TX, packet_type="A", node=1))) == 1


def test_nodes_with():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "Data")
    t.emit(0.0, TraceKind.TX, 1, "Data")
    t.emit(0.0, TraceKind.TX, 5, "Data")
    assert t.nodes_with(TraceKind.TX, "Data") == {1, 5}


def test_disabled_kinds_keep_counters_only():
    t = TraceRecorder(enabled_kinds={TraceKind.TX})
    t.emit(0.0, TraceKind.RX, 1, "Data")
    t.emit(0.0, TraceKind.TX, 1, "Data")
    assert t.count(TraceKind.RX, "Data") == 1  # counter survives
    assert len(t) == 1  # but only the TX record is stored
    assert list(t.filter(kind=TraceKind.RX)) == []


def test_clear():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "Data")
    t.clear()
    assert len(t) == 0
    assert t.count(TraceKind.TX) == 0


def test_records_are_immutable():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.MARK, 4, "Forwarder", (0, 1, 0))
    rec = t.records[0]
    try:
        rec.node = 9
        mutated = True
    except AttributeError:
        mutated = False
    assert not mutated
