"""Unit tests for the trace recorder."""

import pytest

from repro.sim.trace import TraceKind, TraceRecorder


def test_emit_and_count():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "DataPacket", 100)
    t.emit(0.5, TraceKind.TX, 2, "JoinQuery", 101)
    t.emit(1.0, TraceKind.RX, 3, "DataPacket", 100)
    assert t.count(TraceKind.TX) == 2
    assert t.count(TraceKind.TX, "DataPacket") == 1
    assert t.count(TraceKind.RX) == 1
    assert len(t) == 3


def test_filter_by_kind_type_node():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "A")
    t.emit(0.0, TraceKind.TX, 2, "B")
    t.emit(0.0, TraceKind.RX, 1, "A")
    assert len(list(t.filter(kind=TraceKind.TX))) == 2
    assert len(list(t.filter(packet_type="A"))) == 2
    assert len(list(t.filter(node=1))) == 2
    assert len(list(t.filter(kind=TraceKind.TX, packet_type="A", node=1))) == 1


def test_nodes_with():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "Data")
    t.emit(0.0, TraceKind.TX, 1, "Data")
    t.emit(0.0, TraceKind.TX, 5, "Data")
    assert t.nodes_with(TraceKind.TX, "Data") == {1, 5}


def test_disabled_kinds_keep_counters_only():
    t = TraceRecorder(enabled_kinds={TraceKind.TX})
    t.emit(0.0, TraceKind.RX, 1, "Data")
    t.emit(0.0, TraceKind.TX, 1, "Data")
    assert t.count(TraceKind.RX, "Data") == 1  # counter survives
    assert len(t) == 1  # but only the TX record is stored
    assert list(t.filter(kind=TraceKind.RX)) == []


def test_clear():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "Data")
    t.clear()
    assert len(t) == 0
    assert t.count(TraceKind.TX) == 0


def test_records_are_immutable():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.MARK, 4, "Forwarder", (0, 1, 0))
    rec = t.records[0]
    try:
        rec.node = 9
        mutated = True
    except AttributeError:
        mutated = False
    assert not mutated


def test_counters_only_mode():
    t = TraceRecorder(counters_only=True)
    t.emit(0.0, TraceKind.TX, 1, "Data")
    t.emit(0.5, TraceKind.TX, 2, "Data")
    assert t.count(TraceKind.TX) == 2  # counters still work
    assert len(t) == 0  # nothing stored
    with pytest.raises(RuntimeError):
        list(t.filter(kind=TraceKind.TX))
    with pytest.raises(RuntimeError):
        t.nodes_with(TraceKind.TX)


def test_none_packet_type_not_yielded_twice():
    """A MARK-style record (packet_type=None) collapses both index keys
    into (kind, None) — it must still be indexed exactly once."""
    t = TraceRecorder()
    t.emit(0.0, TraceKind.MARK, 4, None, "note")
    assert len(list(t.filter(kind=TraceKind.MARK))) == 1
    assert t.nodes_with(TraceKind.MARK) == {4}


def test_index_extends_after_later_emits():
    """Queries build the index lazily; records emitted afterwards must
    fold in on the next query, in emit order."""
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "Data", "a")
    assert t.nodes_with(TraceKind.TX, "Data") == {1}  # index built here
    t.emit(1.0, TraceKind.TX, 2, "Data", "b")
    t.emit(2.0, TraceKind.TX, 1, "Query", "c")
    assert t.nodes_with(TraceKind.TX, "Data") == {1, 2}
    assert [r.detail for r in t.filter(TraceKind.TX, "Data")] == ["a", "b"]
    assert [r.detail for r in t.filter(TraceKind.TX)] == ["a", "b", "c"]


def test_nodes_with_returns_a_copy():
    t = TraceRecorder()
    t.emit(0.0, TraceKind.TX, 1, "Data")
    s = t.nodes_with(TraceKind.TX, "Data")
    s.clear()  # metrics code mutates these sets freely
    assert t.nodes_with(TraceKind.TX, "Data") == {1}
