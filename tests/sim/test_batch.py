"""Vectorized Monte Carlo batch kernel: bit-identity, gating, fallback.

The batch kernel's contract is absolute: running N seeds through
``run_batch`` must be indistinguishable — trace bytes, metrics, uid
consumption, rng stream states — from running each seed through
``run_single`` sequentially.  These tests pin that contract, route every
committed corpus scenario through the batch entry point, and prove the
fallback machinery leaves ineligible configs bit-unchanged.
"""

import json
from pathlib import Path

import pytest

import repro.sim.batch as batch_mod
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_many, run_single
from repro.net.packet import current_uid, reset_uids
from repro.sim.batch import (
    STATS,
    batch_eligible,
    batch_group_key,
    run_batch,
)
from repro.sim.trace import TraceRecorder, trace_digest
from repro.traffic.spec import SessionSpec, TrafficPlan, ramp_plan

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"

#: small batch-eligible scenario (ideal MAC, lossless, HELLO warmup)
ELIGIBLE = SimulationConfig(
    protocol="mtmrp", topology="grid", grid_nx=6, grid_ny=6, side=120.0,
    group_size=6, mac="ideal", hello_phase=True, hello_warmup=6.0,
    construction_time=0.5, data_time=0.25,
)


def _corpus_config(name: str) -> SimulationConfig:
    payload = json.loads((CORPUS_DIR / name).read_text())
    return SimulationConfig(**payload["scenario"]["config"])


@pytest.fixture(autouse=True)
def _fresh_stats():
    STATS.reset()
    yield
    STATS.reset()


# --------------------------------------------------------------------- #
# bit-identity against the scalar oracle
# --------------------------------------------------------------------- #
class TestBatchBitIdentity:
    def test_results_match_scalar_loop(self):
        cfgs = [ELIGIBLE.with_(seed=s) for s in range(8)]
        reset_uids()
        scalar = [run_single(c, cache=False, warm_start=False) for c in cfgs]
        reset_uids()
        batched = run_batch(cfgs)
        assert batched == scalar
        assert STATS.batched_runs == 8 and STATS.fallback_runs == 0
        # a legacy single-flow run counts one flow in the session tally
        assert STATS.batched_sessions == 8

    def test_trace_and_uid_stream_byte_identical(self):
        """Per-seed traces, concatenated in run order, share one digest.

        ``run_batch`` absorbs each seed's records into the external
        recorder in input order, exactly as a scalar loop over
        ``run_single(trace=...)`` appends them — so digest equality here
        is per-seed byte-identity, not just aggregate agreement.
        """
        cfgs = [ELIGIBLE.with_(seed=s) for s in range(4)]
        reset_uids()
        tr_scalar = TraceRecorder()
        for c in cfgs:
            run_single(c, trace=tr_scalar, cache=False, warm_start=False)
        uid_scalar = current_uid()

        reset_uids()
        tr_batch = TraceRecorder()
        run_batch(cfgs, trace=tr_batch)
        assert trace_digest(tr_batch) == trace_digest(tr_scalar)
        assert current_uid() == uid_scalar

    def test_rng_streams_land_on_scalar_state(self):
        """After a batch, each seed's generators sit where scalar left them.

        The HELLO plan draws speculatively and rewinds; a drift of even
        one draw would desynchronise every later consumer of the stream.
        """
        from repro.sim.rng import BatchedStreams, RngRegistry

        cfg = ELIGIBLE
        streams = BatchedStreams([3, 4, 5])
        plan = batch_mod._HelloPlan(cfg, streams)
        for s, seed in enumerate((3, 4, 5)):
            ref = RngRegistry(seed)
            for i in range(cfg.n_nodes):
                g = ref.stream("hello", i)
                g.uniform(0.0, batch_mod._HELLO_JITTER)
                for _ in range(int(plan.n_exec[s, i])):
                    g.uniform(-batch_mod._HELLO_JITTER, batch_mod._HELLO_JITTER)
                got = streams.stream(s, "hello", i)
                assert got.bit_generator.state == g.bit_generator.state

    def test_repeated_seeds_allowed(self):
        cfgs = [ELIGIBLE.with_(seed=7), ELIGIBLE.with_(seed=7)]
        a, b = run_batch(cfgs)
        assert a == b


# --------------------------------------------------------------------- #
# every corpus scenario through the batch entry point
# --------------------------------------------------------------------- #
CORPUS = sorted(p.name for p in CORPUS_DIR.glob("*.json"))


@pytest.mark.parametrize("name", CORPUS)
def test_corpus_scenario_through_batch_entry(name):
    """``run_many(batch=N)`` reproduces the scalar trace for all 8 scenarios.

    Eligible scenarios ride the vectorized kernel with byte-identical
    traces; ineligible ones must take the scalar fallback and stay
    bit-unchanged (same digest, same uid consumption, same result).
    """
    cfg = _corpus_config(name)
    reset_uids()
    tr_ref = TraceRecorder()
    ref = run_single(cfg, trace=tr_ref, cache=False, warm_start=False)
    uid_ref = current_uid()

    eligible = batch_eligible(cfg) is None
    reset_uids()
    tr_got = TraceRecorder()
    if eligible:
        (got,) = run_batch([cfg], trace=tr_got)
    else:
        got = run_single(cfg, trace=tr_got, cache=False, warm_start=False)
    assert got == ref
    assert trace_digest(tr_got) == trace_digest(tr_ref)
    assert current_uid() == uid_ref
    # the dispatch layer must agree with the gate: batched entry point
    # returns the same result either way, counting fallbacks when scalar
    (via_many,) = run_many([cfg], batch=4)
    assert via_many == ref
    if not eligible:
        assert STATS.fallback_runs >= 1


def test_corpus_has_both_eligible_and_fallback_scenarios():
    """The corpus must keep exercising both sides of the gate."""
    verdicts = {n: batch_eligible(_corpus_config(n)) for n in CORPUS}
    assert any(v is None for v in verdicts.values())
    assert any(v is not None for v in verdicts.values())


# --------------------------------------------------------------------- #
# lifted paths: multi-session plans and iid loss through the kernel
# --------------------------------------------------------------------- #
def _assert_batch_matches_scalar(cfgs):
    """Results, trace bytes and uid consumption all equal the scalar loop."""
    reset_uids()
    scalar = [run_single(c, cache=False, warm_start=False) for c in cfgs]
    reset_uids()
    tr_scalar = TraceRecorder()
    for c in cfgs:
        run_single(c, trace=tr_scalar, cache=False, warm_start=False)
    uid_scalar = current_uid()
    reset_uids()
    tr_batch = TraceRecorder()
    batched = run_batch(cfgs, trace=tr_batch)
    assert batched == scalar
    assert trace_digest(tr_batch) == trace_digest(tr_scalar)
    assert current_uid() == uid_scalar
    return batched


class TestLiftedPaths:
    def test_multi_session_plan_bit_identical(self):
        cfg = ELIGIBLE.with_(sessions=ramp_plan(ELIGIBLE, 4))
        STATS.reset()
        _assert_batch_matches_scalar([cfg.with_(seed=s) for s in range(4)])
        # the flow tally counts (seed x session): 4 seeds x 4 sessions
        assert STATS.batched_runs == 4
        assert STATS.batched_sessions == 16

    @pytest.mark.parametrize("p", [0.1, 0.5, 1.0])
    def test_iid_loss_bit_identical(self, p):
        cfg = ELIGIBLE.with_(loss_model="iid", loss_rate=p)
        _assert_batch_matches_scalar([cfg.with_(seed=s) for s in range(3)])

    def test_sessions_and_loss_combined(self):
        cfg = ELIGIBLE.with_(
            sessions=ramp_plan(ELIGIBLE, 3), loss_model="iid", loss_rate=0.15
        )
        _assert_batch_matches_scalar([cfg.with_(seed=s) for s in range(4)])

    def test_lossy_keep_rx_records(self):
        cfg = ELIGIBLE.with_(loss_model="iid", loss_rate=0.2, keep_rx_records=True)
        _assert_batch_matches_scalar([cfg.with_(seed=s) for s in range(3)])

    @pytest.mark.parametrize(
        "name",
        ["009-two-session-overlap.json", "010-staggered-saturation.json"],
    )
    def test_lifted_corpus_sessions_bit_identical(self, name):
        """009/010 lifted into the kernel's domain batch byte-identically.

        The committed entries stay on the scalar path (009 runs without a
        HELLO phase, 010 under CSMA); lifting exactly those knobs keeps
        the session plans intact, so the batch side must reproduce the
        scalar traces byte for byte.
        """
        cfg = _corpus_config(name).with_(hello_phase=True, mac="ideal")
        assert batch_eligible(cfg) is None
        _assert_batch_matches_scalar([cfg.with_(seed=s) for s in range(3)])

    def test_lossy_corpus_entries_covered(self):
        """Every iid-lossy corpus entry batches; stateful loss stays gated."""
        seen_iid = False
        for name in CORPUS:
            cfg = _corpus_config(name)
            if cfg.loss_model == "none":
                continue
            if cfg.loss_model == "iid":
                seen_iid = True
                lifted = cfg.with_(hello_phase=True, mac="ideal")
                assert batch_eligible(lifted) is None
                _assert_batch_matches_scalar(
                    [lifted.with_(seed=s) for s in range(2)]
                )
            else:
                # stateful loss chains stay gated even in the kernel's
                # domain — lift the unrelated knobs so the loss gate is
                # the one that fires
                lifted = cfg.with_(hello_phase=True, mac="ideal")
                assert batch_eligible(lifted) == f"loss:{cfg.loss_model}"
        assert seen_iid, "corpus lost its iid-lossy entry"


class TestCacheKeyStability:
    def test_newly_eligible_configs_keep_cache_keys(self):
        """Lifting eligibility must not move cache identities.

        Batch output is bit-identical to scalar for the lifted configs,
        so previously cached results stay valid and ``CACHE_VERSION``
        stays at 2; these pins fail loudly if a future change moves
        either without bumping the version.
        """
        from repro.experiments.runner import CACHE_VERSION, config_hash

        assert CACHE_VERSION == 2
        assert config_hash(ELIGIBLE.with_(loss_model="iid", loss_rate=0.1)) == (
            "0c8a355a39bbe2df544d5a870dc4e976f742903573b172e9a39dbe7eebf70c87"
        )
        assert config_hash(ELIGIBLE.with_(sessions=ramp_plan(ELIGIBLE, 3))) == (
            "2fe401ea892fd1ce2f8d71a65283693c935647eb0ba0a3bed7f3ad533a904557"
        )


# --------------------------------------------------------------------- #
# property: any eligible TrafficPlan batches identically to scalar runs
# --------------------------------------------------------------------- #
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@st.composite
def _eligible_plans(draw):
    """Random TrafficPlans inside the batch kernel's domain."""
    n_nodes = ELIGIBLE.n_nodes
    n_sessions = draw(st.integers(min_value=1, max_value=3))
    sources = draw(
        st.lists(
            st.integers(0, n_nodes - 1),
            min_size=n_sessions, max_size=n_sessions, unique=True,
        )
    )
    specs = []
    for i, src in enumerate(sources):
        explicit = draw(st.booleans())
        receivers = None
        group_size = draw(st.integers(2, 5))
        if explicit:
            receivers = tuple(
                draw(
                    st.lists(
                        st.integers(0, n_nodes - 1).filter(lambda r: r != src),
                        min_size=group_size, max_size=group_size, unique=True,
                    )
                )
            )
        specs.append(
            SessionSpec(
                source=src,
                group=i + 1,
                group_size=group_size,
                receivers=receivers,
                start=draw(st.sampled_from((0.0, 0.25, 0.4))),
                rate_pps=draw(st.sampled_from((5.0, 10.0, 20.0))),
                n_packets=draw(st.integers(1, 2)),
            )
        )
    return TrafficPlan(sessions=tuple(specs))


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(plan=_eligible_plans())
def test_random_eligible_plan_batches_identically(plan):
    """Property: an eligible random plan batches as N scalar runs would."""
    cfg = ELIGIBLE.with_(sessions=plan)
    assert batch_eligible(cfg) is None
    _assert_batch_matches_scalar([cfg.with_(seed=s) for s in range(2)])


# --------------------------------------------------------------------- #
# dispatch: run_many(batch=N)
# --------------------------------------------------------------------- #
class TestRunManyBatched:
    def test_matches_serial_run_many(self):
        cfgs = [ELIGIBLE.with_(seed=s) for s in range(6)]
        # a second group (different prefix) plus an ineligible straggler
        cfgs += [ELIGIBLE.with_(seed=s, group_size=5) for s in range(3)]
        cfgs += [ELIGIBLE.with_(seed=1, mac="csma")]
        serial = run_many(cfgs)
        batched = run_many(cfgs, batch=4)
        assert batched == serial

    def test_batch_size_does_not_change_results(self):
        """Chunk boundaries are an execution detail, not an identity input."""
        cfgs = [ELIGIBLE.with_(seed=s) for s in range(5)]
        assert run_many(cfgs, batch=2) == run_many(cfgs, batch=500)

    def test_progress_and_on_result_cover_every_run(self):
        cfgs = [ELIGIBLE.with_(seed=s) for s in range(4)]
        seen, ticks = {}, []
        out = run_many(
            cfgs, batch=2,
            progress=lambda done, total, r: ticks.append((done, total)),
            on_result=lambda k, r: seen.__setitem__(k, r),
        )
        assert ticks == [(i + 1, 4) for i in range(4)]
        assert [seen[k] for k in range(4)] == out


# --------------------------------------------------------------------- #
# grouping key
# --------------------------------------------------------------------- #
class TestBatchGroupKey:
    def test_masks_seed(self):
        assert batch_group_key(ELIGIBLE.with_(seed=1)) == batch_group_key(
            ELIGIBLE.with_(seed=999)
        )

    def test_prefix_inputs_fragment_the_key(self):
        assert batch_group_key(ELIGIBLE.with_(group_size=5)) != batch_group_key(ELIGIBLE)
        assert batch_group_key(
            ELIGIBLE.with_(hello_warmup=12.0)
        ) != batch_group_key(ELIGIBLE)

    def test_batch_size_not_in_key(self):
        """Regression: batching N seeds must not fork the identity key.

        The key is a pure function of the config (minus seed); nothing
        about how many replicates share a dispatch may leak into it —
        otherwise warm-snapshot reuse and result caching would fragment
        by an execution detail.
        """
        key = batch_group_key(ELIGIBLE)
        assert "batch" not in repr(key).lower()
        # and the key of each member of any batch is that same key
        for n in (2, 17, 500):
            assert all(
                batch_group_key(ELIGIBLE.with_(seed=s)) == key for s in range(min(n, 3))
            )


# --------------------------------------------------------------------- #
# gating and fallback
# --------------------------------------------------------------------- #
class TestFallback:
    def test_eligibility_gates(self):
        assert batch_eligible(ELIGIBLE) is None
        assert batch_eligible(ELIGIBLE.with_(hello_phase=False)) == "no-hello-phase"
        assert batch_eligible(ELIGIBLE.with_(mac="csma")) == "mac:csma"
        # iid loss and multi-session plans ride the kernel since the
        # session-aware lift; only stateful loss chains stay gated
        assert batch_eligible(ELIGIBLE.with_(loss_model="iid", loss_rate=0.1)) is None
        assert (
            batch_eligible(ELIGIBLE.with_(sessions=ramp_plan(ELIGIBLE, 3))) is None
        )
        assert batch_eligible(
            ELIGIBLE.with_(loss_model="gilbert", loss_rate=0.1)
        ) == "loss:gilbert"
        assert batch_eligible(ELIGIBLE.with_(shadowing_sigma_db=4.0)) == "shadowing"
        assert batch_eligible(ELIGIBLE.with_(protocol="gmr")) == "geographic-hellos"
        assert batch_eligible(
            ELIGIBLE.with_(hello_period=0.1)
        ) == "hello-period-too-short"
        assert batch_eligible(
            ELIGIBLE.with_(hello_period=3.4)
        ) == "hello-period-vs-expiry"

    def test_run_batch_rejects_ineligible_and_mixed_groups(self):
        with pytest.raises(ValueError, match="not batch-eligible"):
            run_batch([ELIGIBLE.with_(mac="csma")])
        with pytest.raises(ValueError, match="differing only by seed"):
            run_batch([ELIGIBLE.with_(seed=1), ELIGIBLE.with_(seed=2, group_size=5)])
        assert run_batch([]) == []

    def test_runtime_inexpressible_falls_back_per_seed(self, monkeypatch):
        """A seed the closed form cannot express runs scalar, bit-unchanged."""
        cfgs = [ELIGIBLE.with_(seed=s) for s in range(3)]
        reset_uids()
        scalar = [run_single(c, cache=False, warm_start=False) for c in cfgs]

        real = batch_mod._reconstruct_prefix

        def sabotage(cfg, registry, recorder, plan, s):
            if s == 1:
                raise batch_mod._Inexpressible("test-sabotage")
            return real(cfg, registry, recorder, plan, s)

        monkeypatch.setattr(batch_mod, "_reconstruct_prefix", sabotage)
        reset_uids()
        batched = run_batch(cfgs)
        assert batched == scalar
        assert STATS.batched_runs == 2
        assert STATS.fallback_reasons["test-sabotage"] == 1

    def test_fallback_surfaces_in_obs_registry(self):
        from repro.obs.registry import CounterRegistry

        run_many(
            [ELIGIBLE.with_(seed=0), ELIGIBLE.with_(seed=1, mac="csma")], batch=4
        )
        reg = CounterRegistry().refresh()
        assert reg.counters["batch_runs"] == 1
        assert reg.counters["batch_fallback"] == 1
        assert reg.counters["batch_fallback.mac:csma"] == 1
        assert "batch_fallback.mac:csma" in reg.table()
