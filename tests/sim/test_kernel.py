"""Unit tests for the Simulator run loop."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0
    assert sim.pending == 0


def test_schedule_and_run(sim):
    hits = []
    sim.schedule(1.5, hits.append, "x")
    end = sim.run()
    assert hits == ["x"]
    assert end == 1.5
    assert sim.now == 1.5


def test_schedule_at_absolute_time(sim):
    sim.schedule_at(2.0, lambda: None)
    sim.run()
    assert sim.now == 2.0


def test_schedule_at_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_advances_clock_without_events(sim):
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_run_until_leaves_future_events(sim):
    sim.schedule(10.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert sim.now == 10.0


def test_events_execute_in_time_order(sim):
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_event_can_schedule_more_events(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_cancel_pending_event(sim):
    hits = []
    ev = sim.schedule(1.0, hits.append, "no")
    sim.cancel(ev)
    sim.run()
    assert hits == []


def test_stop_halts_run(sim):
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, hits.append, 3)
    sim.run()
    assert hits == [1]
    assert sim.now == 2.0
    sim.run()  # resumes with remaining events
    assert hits == [1, 3]


def test_step_executes_one_event(sim):
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(2.0, hits.append, 2)
    assert sim.step() is True
    assert hits == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_max_events_guard(sim):
    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_max_events_limit_is_exact(sim):
    """A queue that drains at exactly max_events succeeds (no off-by-one:
    the guard fires on the max_events+1-th event, not the last allowed)."""
    hits = []
    for i in range(10):
        sim.schedule(float(i), hits.append, i)
    sim.run(max_events=10)
    assert hits == list(range(10))
    assert sim.events_executed == 10


def test_max_events_raises_on_next_event_beyond_limit(sim):
    hits = []
    for i in range(11):
        sim.schedule(float(i), hits.append, i)
    with pytest.raises(SimulationError):
        sim.run(max_events=10)
    assert hits == list(range(10))  # the allowed 10 did execute


def test_schedule_fire_runs_in_order(sim):
    hits = []
    sim.schedule_fire(2.0, hits.append, "late")
    sim.schedule_fire(1.0, hits.append, "early")
    sim.schedule(1.0, hits.append, "early-cancellable")  # same time: FIFO by seq
    with pytest.raises(SimulationError):
        sim.schedule_fire(-0.1, lambda: None)
    sim.run()
    assert hits == ["early", "early-cancellable", "late"]
    assert sim.events_executed == 3


def test_schedule_many_matches_individual_schedules():
    def drive(batch: bool):
        sim = Simulator(seed=1)
        hits = []
        items = [(0.5, hits.append, ("a",)), (0.25, hits.append, ("b",)),
                 (0.5, hits.append, ("c",))]
        if batch:
            sim.schedule_many(items)
        else:
            for delay, fn, args in items:
                sim.schedule(delay, fn, *args)
        sim.run()
        return hits, sim.events_executed

    assert drive(batch=True) == drive(batch=False) == (["b", "a", "c"], 3)


def test_schedule_many_rejects_negative_delay(sim):
    with pytest.raises(SimulationError):
        sim.schedule_many([(1.0, lambda: None, ()), (-0.5, lambda: None, ())])


def test_reentrant_run_rejected(sim):
    def nested():
        sim.run()

    sim.schedule(0.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_reset_clears_events_and_clock(sim):
    sim.schedule(5.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0


def test_events_executed_counter(sim):
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5
