"""Regression tests for kernel edge cases.

Each class pins one fixed hazard:

* NaN delays/timestamps used to slip past the ``delay < 0`` guards
  (NaN fails every comparison) and only exploded later, deep inside the
  heap, after partially mutating it.
* ``EventQueue.push_many`` used to push entries *while* validating, so a
  NaN mid-batch stranded earlier entries in the heap without advancing
  the ``seq``/``_live`` counters — later pushes reused sequence numbers,
  silently breaking the FIFO tie-break the determinism contract rests on.
* ``Simulator.reset()`` called from inside a handler corrupted the run
  loop's batched live-count reconciliation.
* Identical-timestamp events must fire in scheduling order across all
  four scheduling APIs (the tie-break is the determinism contract).
"""

from __future__ import annotations

import math

import pytest

from repro.sim.events import EventQueue
from repro.sim.kernel import SimulationError, Simulator

NAN = float("nan")


class TestNanRejection:
    """NaN is rejected loudly at the API boundary, not deep in the heap."""

    def test_schedule_rejects_nan_delay(self):
        sim = Simulator(seed=0)
        with pytest.raises(SimulationError, match="invalid delay"):
            sim.schedule(NAN, lambda: None)

    def test_schedule_fire_rejects_nan_delay(self):
        sim = Simulator(seed=0)
        with pytest.raises(SimulationError, match="invalid delay"):
            sim.schedule_fire(NAN, lambda: None)

    def test_schedule_at_rejects_nan_time(self):
        sim = Simulator(seed=0)
        with pytest.raises(SimulationError, match="cannot schedule at"):
            sim.schedule_at(NAN, lambda: None)

    def test_schedule_many_rejects_nan_delay(self):
        sim = Simulator(seed=0)
        items = [(0.1, lambda: None, ()), (NAN, lambda: None, ())]
        with pytest.raises(SimulationError, match="invalid delay"):
            sim.schedule_many(items)

    def test_negative_delay_still_rejected(self):
        sim = Simulator(seed=0)
        with pytest.raises(SimulationError, match="invalid delay"):
            sim.schedule(-0.5, lambda: None)

    def test_infinite_delay_is_allowed(self):
        # +inf is a valid "never" sentinel: it sits at the heap's bottom
        sim = Simulator(seed=0)
        sim.schedule(math.inf, lambda: None)
        sim.schedule(0.1, sim.stop)
        sim.run(until=1.0)
        assert sim.now == pytest.approx(0.1)


class TestPushManyAtomicity:
    """A failing batch leaves the queue untouched."""

    def test_nan_mid_batch_leaves_queue_unchanged(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        seq_before = q._seq
        heap_before = list(q._heap)
        items = [
            (0.5, lambda: None, ()),
            (NAN, lambda: None, ()),
            (0.7, lambda: None, ()),
        ]
        with pytest.raises(ValueError, match="NaN"):
            q.push_many(items)
        assert q._heap == heap_before
        assert q._seq == seq_before
        assert len(q) == 1

    def test_no_duplicate_seq_after_failed_batch(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push_many([(0.5, lambda: None, ()), (NAN, lambda: None, ())])
        ev_a = q.push(0.5, lambda: None)
        ev_b = q.push(0.5, lambda: None)
        assert ev_a.seq != ev_b.seq
        # same timestamp: FIFO pop order must follow scheduling order
        assert q.pop() is ev_a
        assert q.pop() is ev_b

    def test_successful_batch_matches_per_item_push_order(self):
        a, b = EventQueue(), EventQueue()
        fns = [lambda: None, lambda: None, lambda: None]
        a.push_many([(2.0, fns[0], ()), (2.0, fns[1], ()), (1.0, fns[2], ())])
        for t, fn in ((2.0, fns[0]), (2.0, fns[1]), (1.0, fns[2])):
            b.push_fire(t, fn)
        assert [(e.time, e.fn) for e in (a.pop(), a.pop(), a.pop())] == [
            (e.time, e.fn) for e in (b.pop(), b.pop(), b.pop())
        ]


class TestResetDuringRun:
    def test_reset_inside_handler_raises(self):
        sim = Simulator(seed=0)
        failures = []

        def handler():
            try:
                sim.reset()
            except SimulationError as exc:
                failures.append(str(exc))
                sim.stop()

        sim.schedule(0.1, handler)
        sim.run(until=1.0)
        assert len(failures) == 1
        assert "stop()" in failures[0]

    def test_reset_after_run_returns_is_fine(self):
        sim = Simulator(seed=0)
        sim.schedule(0.1, lambda: None)
        sim.schedule(5.0, lambda: None)  # left pending at until=1.0
        sim.run(until=1.0)
        sim.reset()
        assert sim.now == 0.0
        assert len(sim._queue) == 0
        # the simulator is fully usable again
        fired = []
        sim.schedule(0.2, fired.append, 1)
        sim.run(until=1.0)
        assert fired == [1]


class TestSameInstantOrdering:
    """FIFO tie-break holds across every scheduling API at one instant."""

    def test_mixed_api_fifo_at_identical_timestamp(self):
        sim = Simulator(seed=0)
        order = []
        sim.schedule(1.0, order.append, "schedule")
        sim.schedule_fire(1.0, order.append, "schedule_fire")
        sim.schedule_many([(1.0, order.append, ("schedule_many",))])
        sim.schedule_at(1.0, order.append, "schedule_at")
        sim.run(until=2.0)
        assert order == ["schedule", "schedule_fire", "schedule_many", "schedule_at"]

    def test_priority_beats_fifo(self):
        sim = Simulator(seed=0)
        order = []
        sim.schedule(1.0, order.append, "late-prio0")
        sim.schedule(1.0, order.append, "prio-minus1", priority=-1)
        sim.run(until=2.0)
        assert order == ["prio-minus1", "late-prio0"]

    def test_fifo_is_stable_over_many_events(self):
        sim = Simulator(seed=0)
        order = []
        for i in range(100):
            if i % 2:
                sim.schedule_fire(1.0, order.append, i)
            else:
                sim.schedule(1.0, order.append, i)
        sim.run(until=2.0)
        assert order == list(range(100))
