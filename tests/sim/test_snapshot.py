"""Warm-state snapshot/fork engine: bit-identity, isolation, gating.

The campaign engine's core promise is that a warm (forked) run is
*indistinguishable* from a cold run — same trace bytes, same metrics.
These tests pin that promise with golden sha256 digests over every
committed corpus scenario config, exercise a HELLO-phase run with
random-waypoint mobility through the generic fork machinery, and prove
forked replicates share no mutable state.
"""

import json
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import SimulationConfig, make_positions
from repro.experiments.runner import run_single
from repro.net.mobility import RandomWaypointMobility
from repro.net.network import Network
from repro.net.packet import current_uid, reset_uids
from repro.sim.kernel import Simulator
from repro.sim.snapshot import (
    SnapshotCache,
    WarmSnapshot,
    prefix_key,
    warm_profitable,
)
from repro.sim.trace import TraceRecorder, trace_digest

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"

#: Golden cold-run digests (full recorder, uid counter reset to 0) for
#: every committed corpus scenario config.  A change here means run
#: semantics changed for existing configs — bump CACHE_VERSION and
#: regenerate deliberately, never casually.
GOLDEN_DIGESTS = {
    "001-grid-baseline.json": "823ea155d7643dc568a32691f54610f32d6d80e0c77c6c91467dc362a8123e75",
    "002-crash-during-discovery.json": "9e1de87c0da18ca09c0d8aa0f3b362770ce3abba4f3a9ca16b7a07e8666aef4f",
    "003-gilbert-sleep.json": "399f4530db04395deda840c44ea5f81a1731f7d3550fc2e500f3b5c6cca59930",
    "004-mobility-refresh.json": "451e84eb89b4ebb094e9d266cbd44a1bc783c74271243f3473ef40292130b1b1",
    "005-energy-depletion.json": "dd20bec418970ea6a388e25a972991fdee84f85005c25a4cbbd7c805b6079369",
    "006-routeerror-recovery.json": "86889a0b850fab6c535905f70ce2fe87ba6129caf8ec2e089b13bbe3fed10748",
}


def _corpus_config(name: str) -> SimulationConfig:
    payload = json.loads((CORPUS_DIR / name).read_text())
    return SimulationConfig(**payload["scenario"]["config"])


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_cold_and_warm_match_golden_digest(name):
    """Cold build and snapshot fork produce the pinned trace, bit for bit."""
    cfg = _corpus_config(name)

    reset_uids()
    cold_tr = TraceRecorder()
    cold = run_single(cfg, trace=cold_tr, cache=False)
    assert trace_digest(cold_tr) == GOLDEN_DIGESTS[name]

    reset_uids()
    warm_tr = TraceRecorder()
    warm = run_single(cfg, trace=warm_tr, cache=False, warm_start=SnapshotCache())
    assert trace_digest(warm_tr) == GOLDEN_DIGESTS[name]
    assert warm == cold


def test_snapshot_reuse_across_suffix_variants():
    """One snapshot serves every config differing only after the boundary."""
    base = _corpus_config("006-routeerror-recovery.json")  # hello-phase run
    cache = SnapshotCache()
    variants = [
        base,
        base.with_(backoff_w=0.02),
        base.with_(backoff_n=6.0),
        base.with_(protocol="odmrp"),
        base.with_(protocol="dodmrp", data_time=0.5),
    ]
    for v in variants:
        assert prefix_key(v) == prefix_key(base)
        warm = run_single(v, cache=False, warm_start=cache)
        cold = run_single(v, cache=False)
        assert warm == cold
    assert cache.misses == 1 and cache.hits == len(variants) - 1


def _build_hello_mobility_state(cfg):
    """A prefix the config layer can't express: HELLO plus live mobility."""
    sim = Simulator(seed=cfg.seed, trace=TraceRecorder())
    positions = make_positions(cfg, sim.rng.stream("topology"))
    net = Network(sim, positions, comm_range=cfg.comm_range)
    net.install_hello(period=cfg.hello_period)
    for node in net.nodes:
        node.start_agents()
    RandomWaypointMobility(net, speed_max=2.0, update_interval=0.5).start()
    sim.run(until=3.0)
    return sim, net, positions


def test_hello_mobility_fork_bit_identical():
    """The generic fork machinery handles mid-flight mobility state.

    The event heap holds the mobility agent's bound ``_tick``; a fork
    must rebind it to the copied network so the forked geometry evolves
    exactly like the original's would.
    """
    cfg = SimulationConfig(
        protocol="mtmrp", topology="grid", grid_nx=4, grid_ny=4, side=96.0,
        group_size=5, seed=77, mac="csma", hello_phase=True,
    )
    # cold reference: one uninterrupted run to t=6
    reset_uids()
    sim, _net, _pos = _build_hello_mobility_state(cfg)
    sim.run(until=6.0)
    reference = trace_digest(sim.trace)

    # captured state at t=3, continued through two independent forks
    reset_uids()
    sim, net, positions = _build_hello_mobility_state(cfg)
    uid_end = current_uid()
    blob = pickle.dumps((sim, net, [], positions), protocol=pickle.HIGHEST_PROTOCOL)
    snap = WarmSnapshot(("hello-mobility",), 0, uid_end, blob, None)
    for _ in range(2):
        fork = snap.fork()
        fork.sim.run(until=6.0)
        assert trace_digest(fork.sim.trace) == reference
    assert snap.n_forks == 2


def test_forks_share_no_mutable_state():
    """Replicates alias neither each other nor the captured snapshot."""
    cfg = _corpus_config("006-routeerror-recovery.json")
    snap = WarmSnapshot.capture(cfg)
    a, b = snap.fork(), snap.fork()

    assert a.sim is not b.sim
    assert a.net is not b.net
    assert a.sim.trace is not b.sim.trace
    assert a.sim.trace.records is not b.sim.trace.records
    assert a.receivers == b.receivers and a.receivers is not b.receivers

    # rng generators are independent: draining one must not move the other
    ra, rb = a.sim.rng.stream("receivers"), b.sim.rng.stream("receivers")
    assert ra is not rb
    before = rb.bit_generator.state
    ra.random(100)
    assert rb.bit_generator.state == before

    # running one continuation leaves the sibling's trace untouched
    a_len_b = len(b.sim.trace.records)
    a.sim.run(until=a.sim.now + 1.0)
    assert len(b.sim.trace.records) == a_len_b


def test_prefix_key_scopes_reuse():
    cfg = SimulationConfig(protocol="mtmrp", topology="grid", group_size=10, seed=3)
    # suffix-only fields do not fragment the key...
    assert prefix_key(cfg.with_(protocol="odmrp")) == prefix_key(cfg)
    assert prefix_key(cfg.with_(backoff_n=6.0, backoff_w=0.03)) == prefix_key(cfg)
    assert prefix_key(cfg.with_(data_time=9.0)) == prefix_key(cfg)
    # ...prefix inputs do
    assert prefix_key(cfg.with_(seed=4)) != prefix_key(cfg)
    assert prefix_key(cfg.with_(group_size=11)) != prefix_key(cfg)
    assert prefix_key(cfg.with_(loss_model="iid", loss_rate=0.1)) != prefix_key(cfg)
    # GMR's bootstrap records positions, so its prefix is its own
    assert prefix_key(cfg.with_(protocol="gmr")) != prefix_key(cfg)
    # and so does the recorder shape riding inside the snapshot
    assert prefix_key(cfg, TraceRecorder()) != prefix_key(cfg)


def test_warm_profitable_gate():
    cheap = SimulationConfig(protocol="mtmrp", topology="grid", group_size=10)
    assert not warm_profitable(cheap)
    assert warm_profitable(cheap.with_(hello_phase=True))
    assert warm_profitable(cheap.with_(shadowing_sigma_db=4.0))
    assert warm_profitable(cheap.with_(topology="random", random_nodes=1000))


def test_snapshot_cache_lru_and_mismatch():
    cfgs = [
        SimulationConfig(protocol="mtmrp", topology="grid", group_size=10, seed=s)
        for s in (1, 2, 3)
    ]
    cache = SnapshotCache(max_entries=2)
    for c in cfgs:
        cache.get_or_capture(c)
    assert len(cache) == 2 and cache.misses == 3
    cache.get_or_capture(cfgs[2])  # still resident
    assert cache.hits == 1
    cache.get_or_capture(cfgs[0])  # evicted by the LRU bound
    assert cache.misses == 4

    # an explicitly passed snapshot must match the config's prefix
    snap = cache.get_or_capture(cfgs[0])
    with pytest.raises(ValueError, match="does not match"):
        run_single(cfgs[1], cache=False, warm_start=snap)


def test_uid_counter_restored_per_fork():
    cfg = SimulationConfig(protocol="mtmrp", topology="grid", group_size=10, seed=9)
    reset_uids(1000)
    snap = WarmSnapshot.capture(cfg)
    assert snap.uid_base == 1000
    reset_uids(0)  # clobber; fork must restore the boundary value
    snap.fork()
    assert current_uid() == snap.uid_end


def test_deepcopy_fallback_when_unpicklable(monkeypatch):
    """Object graphs that refuse to pickle fall back to per-fork deepcopy."""
    import repro.sim.snapshot as snapshot_mod

    cfg = SimulationConfig(protocol="mtmrp", topology="grid", group_size=10, seed=9)
    reset_uids()
    ref = run_single(cfg, cache=False)

    def refuse(*args, **kwargs):
        raise TypeError("unpicklable extension object")

    monkeypatch.setattr(snapshot_mod._PrefixPickler, "dump", refuse)
    reset_uids()
    snap = WarmSnapshot.capture(cfg)
    assert snap._blob is None and snap.size_bytes == 0
    warm = run_single(cfg, cache=False, warm_start=snap)
    assert warm == ref


# --------------------------------------------------------------------- #
# session axis of the prefix key
# --------------------------------------------------------------------- #
def test_prefix_key_sessions_component():
    """Multi-session prefixes are their own snapshot scope; the
    trivially-default plan shares the legacy one (flag-off contract)."""
    from repro.traffic.spec import SessionSpec, TrafficPlan

    cfg = SimulationConfig(protocol="mtmrp", topology="grid", group_size=10, seed=3)
    # sessions=None and the default single-session plan sign identically
    assert prefix_key(cfg.with_(sessions=TrafficPlan.single(cfg))) == prefix_key(cfg)
    # a real plan installs extra memberships -> distinct prefix
    plan = (
        SessionSpec(source=0, group=1, group_size=4),
        SessionSpec(source=9, group=2, group_size=4, start=0.5),
    )
    multi = cfg.with_(sessions=plan)
    assert prefix_key(multi) != prefix_key(cfg)
    # and two different plans never share a snapshot
    other = cfg.with_(
        sessions=(plan[0], SessionSpec(source=9, group=2, group_size=5, start=0.5))
    )
    assert prefix_key(other) != prefix_key(multi)
    # plan identity, not object identity: an equal plan keys equal
    assert prefix_key(cfg.with_(sessions=tuple(plan))) == prefix_key(multi)


def test_multisession_fork_bit_identical():
    """A forked multi-session run replays the cold trace bit for bit."""
    from repro.traffic.spec import SessionSpec

    cfg = SimulationConfig(
        protocol="mtmrp", topology="grid", grid_nx=5, grid_ny=5,
        side=100.0, seed=21, mac="ideal",
        sessions=(
            SessionSpec(source=0, group=1, group_size=4, n_packets=2),
            SessionSpec(source=24, group=2, group_size=4, start=0.4, n_packets=2),
        ),
    )
    reset_uids()
    cold_tr = TraceRecorder()
    cold = run_single(cfg, trace=cold_tr, cache=False)

    reset_uids()
    snap = WarmSnapshot.capture(cfg, trace=TraceRecorder())
    warm_tr = TraceRecorder()
    warm = run_single(cfg, trace=warm_tr, cache=False, warm_start=snap)
    assert warm == cold
    assert trace_digest(warm_tr) == trace_digest(cold_tr)
