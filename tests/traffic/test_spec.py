"""Unit tests for the session/plan model (``repro.traffic.spec``)."""

import pytest

from repro.experiments.config import SimulationConfig
from repro.traffic.spec import SessionSpec, TrafficPlan, active_sessions, ramp_plan


class TestSessionSpec:
    def test_defaults_round_trip(self):
        spec = SessionSpec()
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    def test_explicit_receivers_round_trip(self):
        spec = SessionSpec(source=3, group=2, receivers=(7, 9, 11), n_packets=2)
        again = SessionSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.receivers == (7, 9, 11)

    def test_receivers_coerced_to_int_tuple(self):
        spec = SessionSpec(receivers=[1.0, 2.0])
        assert spec.receivers == (1, 2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_packets": 0},
            {"rate_pps": 0.0},
            {"rate_pps": -1.0},
            {"start": -0.1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SessionSpec(**kwargs)

    def test_flow_key(self):
        assert SessionSpec(source=5, group=3).flow == (5, 3)

    def test_n_receivers_prefers_explicit_set(self):
        assert SessionSpec(receivers=(1, 2, 3), group_size=20).n_receivers() == 3
        assert SessionSpec(group_size=8).n_receivers() == 8
        assert SessionSpec(group_size=8).n_receivers(default=4) == 4

    def test_is_default_for_matches_config_flow(self):
        cfg = SimulationConfig()
        assert SessionSpec(
            source=cfg.source, group=cfg.group, group_size=cfg.group_size
        ).is_default_for(cfg)
        assert not SessionSpec(group_size=cfg.group_size + 1).is_default_for(cfg)
        assert not SessionSpec(
            group_size=cfg.group_size, n_packets=2
        ).is_default_for(cfg)
        assert not SessionSpec(
            group_size=cfg.group_size, start=0.5
        ).is_default_for(cfg)


class TestTrafficPlan:
    def test_duplicate_flows_rejected(self):
        with pytest.raises(ValueError):
            TrafficPlan(sessions=(SessionSpec(group=1), SessionSpec(group=1)))

    def test_duplicate_groups_rejected_even_across_sources(self):
        with pytest.raises(ValueError):
            TrafficPlan(
                sessions=(SessionSpec(source=0, group=1), SessionSpec(source=5, group=1))
            )

    def test_dict_payloads_coerced(self):
        plan = TrafficPlan(sessions=({"source": 0, "group": 1}, {"source": 2, "group": 2}))
        assert all(isinstance(s, SessionSpec) for s in plan)
        assert len(plan) == 2

    def test_single_is_default(self):
        cfg = SimulationConfig()
        assert TrafficPlan.single(cfg).is_default_single(cfg)

    def test_key_is_hashable_identity(self):
        plan = TrafficPlan(sessions=(SessionSpec(), SessionSpec(source=2, group=2)))
        assert hash(plan.key()) == hash(plan.key())
        other = TrafficPlan(sessions=(SessionSpec(n_packets=2),))
        assert plan.key() != other.key()

    def test_round_trip_via_dicts(self):
        plan = TrafficPlan(
            sessions=(SessionSpec(), SessionSpec(source=9, group=4, start=0.5))
        )
        assert TrafficPlan.from_dicts(plan.to_dicts()) == plan


class TestActiveSessions:
    def test_none_for_unconfigured(self):
        assert active_sessions(SimulationConfig()) is None

    def test_none_for_trivially_default_plan(self):
        cfg = SimulationConfig()
        assert active_sessions(cfg.with_(sessions=TrafficPlan.single(cfg))) is None

    def test_active_for_real_plans(self):
        cfg = SimulationConfig()
        two = cfg.with_(
            sessions=(
                SessionSpec(group_size=cfg.group_size),
                SessionSpec(source=5, group=2, group_size=4),
            )
        )
        assert len(active_sessions(two)) == 2
        # a single session that differs from the config is still active
        one = cfg.with_(sessions=(SessionSpec(group_size=4),))
        assert len(active_sessions(one)) == 1


class TestConfigValidation:
    def test_out_of_range_source_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(sessions=(SessionSpec(source=100),))

    def test_out_of_range_receiver_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(sessions=(SessionSpec(receivers=(0, 5)),))  # 0 == source

    def test_oversized_group_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(sessions=(SessionSpec(group_size=100),))

    def test_config_coerces_dict_sessions(self):
        cfg = SimulationConfig(sessions=({"source": 0, "group": 1, "n_packets": 2},))
        assert isinstance(cfg.sessions[0], SessionSpec)


class TestRampPlan:
    def test_sources_distinct_and_spread(self):
        cfg = SimulationConfig()
        plan = ramp_plan(cfg, 8)
        sources = [s.source for s in plan]
        assert len(set(sources)) == 8
        assert sources[0] == cfg.source
        assert max(sources) == cfg.n_nodes - 1

    def test_single_session_ramp(self):
        cfg = SimulationConfig()
        plan = ramp_plan(cfg, 1)
        assert len(plan) == 1
        assert plan.sessions[0].source == cfg.source

    def test_starts_staggered(self):
        plan = ramp_plan(SimulationConfig(), 4, stagger=0.25)
        assert [s.start for s in plan] == [0.0, 0.25, 0.5, 0.75]

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            ramp_plan(SimulationConfig(), 0)
        with pytest.raises(ValueError):
            ramp_plan(SimulationConfig(), 101)
