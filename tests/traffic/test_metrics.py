"""Traffic metrics tests: fairness, per-session attribution, aggregation."""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_single
from repro.sim.trace import TraceKind, TraceRecorder
from repro.traffic.metrics import (
    SATURATION_THRESHOLD,
    collect_traffic_metrics,
    jain_fairness,
    session_deliveries,
)
from repro.traffic.spec import SessionSpec


class TestJainFairness:
    def test_uniform_is_one(self):
        assert jain_fairness([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_empty_and_all_zero_are_one(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_single_starver_approaches_reciprocal(self):
        # one session takes everything: index == 1/n
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounded(self):
        vals = [0.3, 0.9, 0.6, 1.0]
        assert 1.0 / len(vals) <= jain_fairness(vals) <= 1.0


class TestSessionDeliveries:
    def test_matches_flow_prefix_only(self):
        tr = TraceRecorder()
        tr.emit(0.1, TraceKind.DELIVER, 5, "DataPacket", (0, 1, 0))
        tr.emit(0.2, TraceKind.DELIVER, 5, "DataPacket", (0, 1, 1))
        tr.emit(0.3, TraceKind.DELIVER, 6, "DataPacket", (0, 2, 0))  # other group
        tr.emit(0.4, TraceKind.DELIVER, 7, "DataPacket", (3, 1, 0))  # other source
        nodes, total = session_deliveries(tr, (0, 1))
        assert nodes == {5}
        assert total == 2

    def test_ignores_non_flow_details(self):
        tr = TraceRecorder()
        tr.emit(0.1, TraceKind.DELIVER, 5, "FloodPacket", 123)
        assert session_deliveries(tr, (0, 1)) == (set(), 0)


class TestCollectFromLiveRun:
    @pytest.fixture(scope="class")
    def two_session(self):
        cfg = SimulationConfig(
            mac="ideal",
            sessions=(
                SessionSpec(source=0, group=1, group_size=6, n_packets=2),
                SessionSpec(source=55, group=2, group_size=6, start=0.5, n_packets=2),
            ),
        )
        return run_single(cfg, cache=False)

    def test_per_session_slices(self, two_session):
        tm = two_session.traffic
        assert tm is not None
        assert len(tm.sessions) == 2
        flows = {s.flow for s in tm.sessions}
        assert flows == {(0, 1), (55, 2)}
        for s in tm.sessions:
            assert s.n_receivers == 6
            assert s.packets_sent == 2
            assert 0.0 <= s.delivery_ratio <= 1.0
            assert s.goodput > 0.0

    def test_lossless_run_is_fair_and_unsaturated(self, two_session):
        tm = two_session.traffic
        assert tm.aggregate_delivery_ratio == pytest.approx(1.0)
        assert tm.fairness == pytest.approx(1.0)
        assert not tm.saturated
        assert tm.aggregate_deliveries == 2 * 2 * 6

    def test_forwarder_sharing_accounting(self, two_session):
        tm = two_session.traffic
        assert tm.forwarding_nodes >= tm.shared_forwarders >= 0
        assert tm.forwarder_reuse == sum(
            len(s.forwarders) for s in tm.sessions
        ) - tm.forwarding_nodes
        if tm.forwarding_nodes:
            assert tm.shared_forwarder_ratio == pytest.approx(
                tm.shared_forwarders / tm.forwarding_nodes
            )

    def test_aggregate_data_tx_counts_all_sessions(self, two_session):
        tm = two_session.traffic
        # two sources, two packets each, multi-hop trees: strictly more
        # transmissions than the 4 originations
        assert tm.aggregate_data_tx > 4

    def test_runresult_mirrors_traffic_aggregates(self, two_session):
        r = two_session
        assert r.delivered == sum(s.delivered for s in r.traffic.sessions)
        assert r.data_transmissions == r.traffic.aggregate_data_tx
        assert r.delivery_ratio == pytest.approx(
            r.traffic.aggregate_delivery_ratio
        )


def test_saturation_threshold_drives_flag():
    """The saturated flag is exactly the ratio/threshold comparison."""
    cfg = SimulationConfig(mac="ideal")
    sim_cfg = cfg.with_(
        sessions=(SessionSpec(source=0, group=1, group_size=6, n_packets=2),)
    )
    res = run_single(sim_cfg, cache=False)
    tm = res.traffic
    assert tm.saturated == (tm.aggregate_delivery_ratio < SATURATION_THRESHOLD)


def test_collect_traffic_metrics_direct():
    """Unit-level: metrics straight from a hand-built trace + agents."""

    class FakeAgent:
        def __init__(self, node_id, sessions=None, tx=None):
            self.node_id = node_id
            self.sessions = sessions or {}
            self.data_tx_by_session = tx or {}

    class FakeState:
        is_forwarder = True

    class FakeSim:
        pass

    class FakeNet:
        def __init__(self, trace):
            self.sim = FakeSim()
            self.sim.trace = trace

    tr = TraceRecorder()
    for node in (3, 4):
        tr.emit(0.1, TraceKind.DELIVER, node, "DataPacket", (0, 1, 0))
    tr.emit(0.2, TraceKind.TX, 0, "DataPacket", 1)
    tr.emit(0.3, TraceKind.TX, 2, "DataPacket", 2)
    spec = SessionSpec(source=0, group=1, receivers=(3, 4))
    agents = [
        FakeAgent(0),
        FakeAgent(2, sessions={(0, 1): FakeState()}),
        FakeAgent(3),
        FakeAgent(4),
    ]
    tm = collect_traffic_metrics(
        FakeNet(tr), agents, (spec,), {(0, 1): [3, 4]}, horizon=1.0
    )
    s = tm.sessions[0]
    assert s.delivered == 2 and s.deliveries == 2
    assert s.delivery_ratio == pytest.approx(1.0)
    assert s.forwarders == (2,)
    assert tm.aggregate_data_tx == 2
    assert tm.forwarding_nodes == 1 and tm.shared_forwarders == 0
