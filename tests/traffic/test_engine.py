"""Engine tests: membership draws, stream identity, phase scheduling."""

import pytest

from repro.experiments.config import SimulationConfig
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.traffic.engine import (
    install_session_members,
    schedule_sessions,
    session_members,
    sessions_horizon,
)
from repro.traffic.spec import SessionSpec


def _net(sim, cfg):
    from repro.experiments.config import make_positions
    from repro.mac.ideal import IdealMac

    return Network(
        sim,
        make_positions(cfg, sim.rng.stream("topology")),
        comm_range=cfg.comm_range,
        mac_factory=IdealMac,
        perfect_channel=True,
    )


@pytest.fixture
def cfg():
    return SimulationConfig(mac="ideal")


def test_draws_are_keyed_by_session_identity(cfg):
    """A session draws the same receivers alone or inside a bigger plan."""
    spec_a = SessionSpec(source=10, group=2, group_size=5)
    spec_b = SessionSpec(source=50, group=3, group_size=5)

    def draw(plan):
        sim = Simulator(seed=3)
        net = _net(sim, cfg)
        return install_session_members(cfg, sim, net, plan)

    together = draw((spec_a, spec_b))
    alone = draw((spec_a,))
    assert together[spec_a.flow] == alone[spec_a.flow]
    # and plan order doesn't matter either
    reversed_ = draw((spec_b, spec_a))
    assert together[spec_a.flow] == reversed_[spec_a.flow]
    assert together[spec_b.flow] == reversed_[spec_b.flow]


def test_draw_excludes_the_source(cfg):
    sim = Simulator(seed=3)
    net = _net(sim, cfg)
    spec = SessionSpec(source=42, group=2, group_size=10)
    members = install_session_members(cfg, sim, net, (spec,))
    assert 42 not in members[spec.flow]
    assert len(members[spec.flow]) == 10


def test_explicit_receivers_installed_verbatim(cfg):
    sim = Simulator(seed=3)
    net = _net(sim, cfg)
    spec = SessionSpec(source=0, group=2, receivers=(5, 6, 7))
    members = install_session_members(cfg, sim, net, (spec,))
    assert members[spec.flow] == [5, 6, 7]
    assert {n.node_id for n in net.nodes if n.is_member(2)} == {5, 6, 7}


def test_legacy_receivers_reused_for_config_matching_spec(cfg):
    sim = Simulator(seed=3)
    net = _net(sim, cfg)
    legacy = [1, 2, 3]
    spec = SessionSpec(
        source=cfg.source, group=cfg.group, group_size=cfg.group_size, n_packets=2
    )
    members = install_session_members(
        cfg, sim, net, (spec,), legacy_receivers=legacy
    )
    assert members[spec.flow] == legacy


def test_session_members_recovers_installed_sets(cfg):
    sim = Simulator(seed=3)
    net = _net(sim, cfg)
    plan = (SessionSpec(source=0, group=2, group_size=4),)
    installed = install_session_members(cfg, sim, net, plan)
    recovered = session_members(net, plan)
    assert sorted(recovered[(0, 2)]) == sorted(installed[(0, 2)])


def test_sessions_horizon_covers_last_packet(cfg):
    plan = (
        SessionSpec(source=0, group=2, group_size=4, start=0.0, n_packets=1),
        SessionSpec(
            source=9, group=3, group_size=4, start=1.0, n_packets=3, rate_pps=2.0
        ),
    )
    settle = cfg.effective_construction_time
    # session 2: start 1.0 + settle + 2 inter-packet gaps of 0.5 s, + drain
    assert sessions_horizon(cfg, plan) == pytest.approx(
        1.0 + settle + 1.0 + cfg.data_time
    )


def test_schedule_sessions_drives_all_flows(cfg):
    from repro.experiments.config import make_agent_factory

    sim = Simulator(seed=3)
    net = _net(sim, cfg)
    plan = (
        SessionSpec(source=0, group=1, group_size=4, n_packets=2),
        SessionSpec(source=99, group=2, group_size=4, start=0.5),
    )
    members = install_session_members(cfg, sim, net, plan)
    net.bootstrap_neighbor_tables()
    agents = net.install(make_agent_factory(cfg))
    net.start()
    horizon = schedule_sessions(cfg, sim, net, agents, plan, members)
    sim.run(until=horizon)
    for spec in plan:
        st = agents[spec.source].sessions.get(spec.flow)
        assert st is not None, f"session {spec.flow} never started"
        assert agents[spec.source].data_tx_by_session[spec.flow] >= spec.n_packets


def test_schedule_sessions_gmr_uses_multicast(cfg):
    """Stateless geographic sources are driven through ``multicast``."""
    from repro.experiments.config import make_agent_factory

    from repro.sim.trace import TraceKind, TraceRecorder

    gmr_cfg = cfg.with_(protocol="gmr")
    sim = Simulator(seed=3, trace=TraceRecorder())
    net = _net(sim, gmr_cfg)
    plan = (SessionSpec(source=0, group=1, group_size=4, n_packets=2),)
    members = install_session_members(gmr_cfg, sim, net, plan)
    net.bootstrap_neighbor_tables(with_positions=True)  # geographic routing
    agents = net.install(make_agent_factory(gmr_cfg))
    net.start()
    horizon = schedule_sessions(gmr_cfg, sim, net, agents, plan, members)
    sim.run(until=horizon)
    assert sim.trace.count(TraceKind.TX, "GeoDataPacket") >= 2
    assert sim.trace.nodes_with(TraceKind.DELIVER) & set(members[(0, 1)])
