"""Behavioural tests for the ODMRP baseline."""

import numpy as np

from repro.protocols.odmrp import OdmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import (
    build,
    data_tx_count,
    delivered_nodes,
    forwarders_of,
    line_positions,
    run_round,
)


def odmrp():
    return lambda: OdmrpAgent()


class TestBasics:
    def test_line_delivery(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=odmrp())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {3}
        assert forwarders_of(agents) == {1, 2}
        assert data_tx_count(sim) == 3

    def test_every_receiver_originates_a_reply(self):
        """ODMRP has no suppression: replies == receivers."""
        pos = [[0, 0], [20, 0], [40, 10], [40, -10], [20, 20]]
        sim, _net, agents = build(pos, 25.0, receivers=[2, 3, 4], agent_factory=odmrp())
        run_round(sim, agents)
        assert sum(a.stats["replies_originated"] for a in agents) == 3

    def test_no_overhearing_state(self):
        """ODMRP ignores replies not addressed to it: no neighbor marks."""
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=odmrp())
        run_round(sim, agents)
        session = (0, 1, 0)
        for a in agents:
            for entry_id in a.node.neighbor_table.ids():
                e = a.node.neighbor_table.entry(entry_id)
                assert session not in e.covered_sessions
                assert session not in e.forwarder_sessions

    def test_join_query_flood_covers_network(self):
        sim, _net, agents = build(line_positions(6), 25.0, receivers=[5], agent_factory=odmrp())
        run_round(sim, agents, settle=3.0)
        assert sim.trace.count(TraceKind.TX, "JoinQuery") == 6

    def test_relay_profit_hook_returns_zero(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2], agent_factory=odmrp())
        run_round(sim, agents)
        assert all(
            st.relay_profit == 0
            for a in agents
            for st in a.sessions.values()
        )


class TestForwardingGroup:
    def test_forwarding_group_is_union_of_reverse_paths(self):
        """Y topology: two receivers behind a shared stem."""
        pos = [
            [0, 0],     # 0 S
            [20, 0],    # 1 stem
            [40, 10],   # 2 branch a
            [40, -10],  # 3 branch b
            [60, 10],   # 4 R1
            [60, -10],  # 5 R2
        ]
        sim, _net, agents = build(pos, 25.0, receivers=[4, 5], agent_factory=odmrp())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {4, 5}
        assert forwarders_of(agents) == {1, 2, 3}
        assert data_tx_count(sim) == 4

    def test_receiver_in_middle_forwards(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[2, 3], agent_factory=odmrp())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {2, 3}
        st2 = agents[2].state_of(0, 1)
        assert st2.covered and st2.is_forwarder
