"""Behavioural tests for the DODMRP baseline (destination-driven backoff)."""

import numpy as np

from repro.core.messages import JoinQuery
from repro.protocols.base import SessionState
from repro.protocols.dodmrp import DodmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import build, delivered_nodes, forwarders_of, run_round


def dodmrp(**kw):
    return lambda: DodmrpAgent(**kw)


class TestDelayPolicy:
    def _delay(self, agents, node, jq):
        st = SessionState(source=0, group=1, seq=0, upstream=0)
        return agents[node].query_forward_delay(jq, st)

    def test_members_faster_than_nonmembers(self):
        pos = [[0, 0], [20, 0], [40, 0]]
        _sim, _net, agents = build(pos, 25.0, receivers=[1], agent_factory=dodmrp())
        jq = JoinQuery(src=0, source=0, group=1, seq=0)
        member_delays = [self._delay(agents, 1, jq) for _ in range(30)]
        nonmember_delays = [self._delay(agents, 2, jq) for _ in range(30)]
        assert max(member_delays) < min(nonmember_delays) + 2e-3  # penalty dominates
        assert np.mean(member_delays) < np.mean(nonmember_delays)

    def test_penalty_parameterisable(self):
        pos = [[0, 0], [20, 0]]
        _sim, _net, agents = build(pos, 25.0, receivers=[],
                                   agent_factory=dodmrp(jitter=1e-3, nonmember_penalty=50e-3))
        jq = JoinQuery(src=0, source=0, group=1, seq=0)
        d = self._delay(agents, 1, jq)
        assert d >= 50e-3


class TestDestinationDriven:
    def test_member_path_preferred(self):
        """Fig. 2-style diamond: the member-side relay must win."""
        pos = [
            [0, 0],     # 0 S
            [20, 15],   # 1 B non-member
            [20, -15],  # 2 C member (receiver)
            [40, 0],    # 3 D receiver
        ]
        wins = 0
        for seed in range(10):
            sim, _net, agents = build(pos, 26.0, receivers=[2, 3],
                                      agent_factory=dodmrp(), seed=seed)
            run_round(sim, agents)
            assert delivered_nodes(sim) == {2, 3}
            if forwarders_of(agents) == {2}:
                wins += 1
        assert wins == 10  # penalty >> jitter here, so deterministic

    def test_fewer_extra_nodes_than_odmrp_on_grid(self):
        from repro.net.topology import grid_topology
        from repro.protocols.odmrp import OdmrpAgent

        def extra(factory):
            out = []
            for seed in range(8):
                rng = np.random.default_rng(seed)
                receivers = rng.choice(np.arange(1, 100), size=20, replace=False).tolist()
                sim, _net, agents = build(grid_topology(), 40.0, receivers=receivers,
                                          agent_factory=factory, seed=seed)
                run_round(sim, agents)
                tx_nodes = sim.trace.nodes_with(TraceKind.TX, "DataPacket")
                out.append(len(tx_nodes - set(receivers) - {0}))
            return float(np.mean(out))

        assert extra(dodmrp()) < extra(lambda: OdmrpAgent())
