"""Tests for the shared on-demand multicast machinery."""

import numpy as np
import pytest

from repro.core.messages import JoinQuery, JoinReply
from repro.protocols.base import OnDemandMulticastAgent, SessionState
from repro.protocols.odmrp import OdmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import build, delivered_nodes, line_positions, run_round


def base_agent():
    return lambda: OdmrpAgent()  # the base class with default hooks


class TestSessionLifecycle:
    def test_request_route_increments_seq(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=base_agent())
        s0 = agents[0].request_route(1)
        sim.run(until=sim.now + 1.0)
        s1 = agents[0].request_route(1)
        assert s0 == (0, 1, 0)
        assert s1 == (0, 1, 1)

    def test_groups_are_independent(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=base_agent())
        net.set_group_members(9, [1])
        net.bootstrap_neighbor_tables()
        agents[0].request_route(1)
        agents[0].request_route(9)
        sim.run(until=sim.now + 2.0)
        assert agents[2].state_of(0, 1) is not None
        assert agents[1].state_of(0, 9).covered

    def test_stale_query_dropped(self):
        """A JoinQuery from an older round than the current one is ignored."""
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=base_agent())
        run_round(sim, agents)          # round 0
        run_round(sim, agents, seq=1)   # round 1 (request_route bumps seq)
        # forge a stale round-0 query at node 1
        stale = JoinQuery(src=0, source=0, group=1, seq=0)
        before = agents[1].state_of(0, 1).seq
        agents[1].on_packet(stale)
        assert agents[1].state_of(0, 1).seq == before
        assert sim.trace.counts[(TraceKind.DROP, "JoinQuery")] > 0

    def test_reply_without_session_dropped(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=base_agent())
        jr = JoinReply(src=2, dst=1, nexthop=1, receiver=2, source=0, group=1, seq=0)
        agents[1].on_packet(jr)  # no JoinQuery seen yet
        assert agents[1].state_of(0, 1) is None
        assert sim.trace.counts[(TraceKind.DROP, "JoinReply")] == 1


class TestDataPath:
    def test_duplicate_data_dropped(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=base_agent())
        run_round(sim, agents)
        assert sim.trace.count(TraceKind.DELIVER) == 1
        # receiver hears the same flow from multiple transmitters at most
        # once at the app layer
        assert len(agents[2].delivered) == 1

    def test_last_data_from_tracked(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=base_agent())
        run_round(sim, agents)
        assert agents[2].last_data_from[(0, 1)] == 1

    def test_data_before_route_goes_nowhere(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=base_agent())
        agents[0].send_data(1, 0)
        sim.run(until=sim.now + 1.0)
        # neighbors hear it but nobody forwards (no forwarders yet)
        assert sim.trace.count(TraceKind.TX, "DataPacket") == 1
        assert delivered_nodes(sim) == set()


class TestStats:
    def test_stats_keys_complete(self):
        a = OdmrpAgent()
        assert set(a.stats) == {
            "queries_forwarded",
            "replies_originated",
            "replies_forwarded",
            "replies_suppressed",
            "handovers",
            "data_forwarded",
            "route_errors_sent",
            "repair_queries_sent",
            "grafts_ok",
            "grafts_failed",
            "route_errors_suppressed",
            "repair_rebuilds",
            "degraded_data",
            "degraded_forwards",
        }

    def test_session_state_defaults(self):
        st = SessionState(source=0, group=1, seq=2, upstream=5)
        assert not st.is_forwarder and not st.covered and not st.replied
        assert st.session == (0, 1, 2)
        assert st.acted_nexthop_for == set()
        assert st.downstream_children == set()
