"""Behavioural tests for the GMR-style stateless geographic multicast."""

import numpy as np
import pytest

from repro.mac.ideal import IdealMac
from repro.net.network import Network
from repro.net.topology import grid_topology
from repro.protocols.gmr import GmrAgent
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceKind
from tests.core.helpers import line_positions


def geo_net(positions, comm=25.0, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, np.asarray(positions, dtype=float), comm_range=comm,
                  mac_factory=IdealMac, perfect_channel=True)
    net.bootstrap_neighbor_tables(with_positions=True)
    agents = net.install(lambda node: GmrAgent())
    net.start()
    return sim, net, agents


def _multicast(sim, net, agents, dests, group=1, seq=0):
    positions = {d: net.node(d).position for d in dests}
    agents[0].multicast(group, positions, seq=seq)
    sim.run(until=sim.now + 2.0)


class TestLine:
    def test_delivery_along_line(self):
        sim, net, agents = geo_net(line_positions(5))
        _multicast(sim, net, agents, [4])
        assert sim.trace.nodes_with(TraceKind.DELIVER) == {4}

    def test_transmissions_equal_path_relays(self):
        sim, net, agents = geo_net(line_positions(5))
        _multicast(sim, net, agents, [4])
        # greedy geographic: 0 -> 1 -> 2 -> 3, receiver 4 hears 3
        assert sim.trace.count(TraceKind.TX, "GeoDataPacket") == 4

    def test_neighbor_destination_costs_one_broadcast(self):
        sim, net, agents = geo_net(line_positions(3))
        _multicast(sim, net, agents, [1])
        assert sim.trace.count(TraceKind.TX, "GeoDataPacket") == 1


class TestSplitting:
    def test_splits_toward_diverging_destinations(self):
        """A Y-shaped instance forces the packet to split."""
        pos = [
            [0, 0],      # 0 source
            [20, 0],     # 1 junction
            [40, 15],    # 2 upper relay
            [40, -15],   # 3 lower relay
            [60, 25],    # 4 upper receiver
            [60, -25],   # 5 lower receiver
        ]
        sim, net, agents = geo_net(pos, comm=27.0)
        _multicast(sim, net, agents, [4, 5])
        assert sim.trace.nodes_with(TraceKind.DELIVER) == {4, 5}
        assert sum(a.stats["splits"] for a in agents) >= 1

    def test_shared_relay_single_copy(self):
        """Destinations behind the same neighbor share one transmission."""
        pos = [[0, 0], [20, 0], [40, 10], [40, -10]]
        sim, net, agents = geo_net(pos, comm=25.0)
        _multicast(sim, net, agents, [2, 3])
        assert sim.trace.nodes_with(TraceKind.DELIVER) == {2, 3}
        assert sim.trace.count(TraceKind.TX, "GeoDataPacket") == 2  # 0 and 1


class TestVoid:
    def test_local_minimum_counts_stuck(self):
        """No neighbor makes progress toward an isolated far receiver:
        greedy-only GMR gives up (no perimeter fallback)."""
        pos = [
            [0, 0],     # 0 source
            [20, 0],    # 1 only neighbor, but *behind* the destination line
            [-40, 0],   # 2 receiver on the opposite side, unreachable greedily
        ]
        sim, net, agents = geo_net(pos, comm=25.0)
        _multicast(sim, net, agents, [2])
        assert sim.trace.nodes_with(TraceKind.DELIVER) == set()
        assert agents[0].stats["stuck"] == 1


class TestGrid:
    def test_full_delivery_on_dense_grid(self):
        sim = Simulator(seed=4)
        net = Network(sim, grid_topology(), comm_range=40.0,
                      mac_factory=IdealMac, perfect_channel=True)
        net.bootstrap_neighbor_tables(with_positions=True)
        agents = net.install(lambda node: GmrAgent())
        net.start()
        rng = np.random.default_rng(6)
        dests = rng.choice(np.arange(1, 100), size=15, replace=False).tolist()
        positions = {d: net.node(d).position for d in dests}
        agents[0].multicast(1, positions)
        sim.run(until=2.0)
        assert sim.trace.nodes_with(TraceKind.DELIVER) == set(dests)

    def test_stateless_no_tree_state(self):
        """GMR keeps no per-session forwarding state beyond dup filters."""
        a = GmrAgent()
        assert not hasattr(a, "sessions")

    def test_duplicate_flow_not_reforwarded(self):
        sim, net, agents = geo_net(line_positions(4))
        _multicast(sim, net, agents, [3], seq=0)
        tx1 = sim.trace.count(TraceKind.TX, "GeoDataPacket")
        _multicast(sim, net, agents, [3], seq=0)  # same flow key again
        # the source's own dup filter stops it entirely
        assert sim.trace.count(TraceKind.TX, "GeoDataPacket") == tx1
