"""Soft-state semantics of the route round: seq-based replacement.

Each refresh flood carries a fresh sequence number; nodes keep only the
newest round's session state.  These tests pin the replacement rules that
the fault-recovery machinery leans on: stale floods are dropped as
duplicates, a newer round rebuilds state from scratch (clearing the
forwarder flag until re-confirmed), and a node that crashed through a
round rejoins on the next one.
"""

from repro.net.packet import BROADCAST
from repro.protocols.base import JoinQuery
from repro.protocols.odmrp import OdmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import build, forwarders_of, line_positions, run_round


def _query(seq, src=0, hop_count=0):
    return JoinQuery(
        src=src, dst=BROADCAST, source=0, group=1, seq=seq, hop_count=hop_count,
        path_profit=0,
    )


class TestSeqReplacement:
    def test_stale_seq_dropped_as_duplicate(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent())
        run_round(sim, agents)  # establishes seq 0 everywhere
        drops_before = sim.trace.count(TraceKind.DROP, "JoinQuery")
        agents[1].on_packet(_query(seq=0))  # replay of the current round
        assert sim.trace.count(TraceKind.DROP, "JoinQuery") == drops_before + 1
        assert agents[1].state_of(0, 1).seq == 0  # state untouched

    def test_newer_seq_replaces_state_and_clears_forwarder(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent())
        run_round(sim, agents)
        st0 = agents[1].state_of(0, 1)
        assert st0.is_forwarder  # the line's only relay

        agents[1].on_packet(_query(seq=1))
        st1 = agents[1].state_of(0, 1)
        assert st1 is not st0 and st1.seq == 1
        # forwarder status is per-round: cleared until a JoinReply re-confirms
        assert not st1.is_forwarder

    def test_refresh_round_reconfirms_forwarders(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent())
        run_round(sim, agents)
        assert forwarders_of(agents) == {1}
        agents[0].request_route(1)  # refresh: seq 1
        sim.run(until=sim.now + 1.0)
        st = agents[1].state_of(0, 1)
        assert st.seq == 1 and st.is_forwarder

    def test_reply_from_stale_round_is_ignored(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent())
        run_round(sim, agents)
        agents[1].on_packet(_query(seq=3))  # jump ahead; no reply seen yet
        st = agents[1].state_of(0, 1)
        assert st.seq == 3 and not st.is_forwarder
        # a JoinReply for the old round must not resurrect the forwarder flag
        from repro.protocols.base import JoinReply

        agents[1].on_packet(JoinReply(
            src=2, dst=1, nexthop=1, receiver=2, source=0, group=1, seq=0,
        ))
        assert not agents[1].state_of(0, 1).is_forwarder


class TestRecoveredNodeRejoins:
    def test_crashed_relay_rejoins_on_next_refresh(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: OdmrpAgent())
        agents[0].request_route(1)
        agents[0].start_periodic_refresh(1, interval=1.0)
        sim.run(until=0.5)
        assert forwarders_of(agents) == {1}

        net.node(1).fail()  # the bridge dies: round 1 can't cross it
        sim.run(until=1.5)
        net.node(1).recover()
        sim.run(until=2.6)  # round 2 refloods through the recovered node

        st = agents[1].state_of(0, 1)
        assert st.seq == 2 and st.is_forwarder
        agents[0].send_data(1, 7)
        sim.run(until=sim.now + 0.5)
        assert any(r.detail == (0, 1, 7)
                   for r in sim.trace.filter(kind=TraceKind.DELIVER, node=2))

    def test_sleeping_receiver_covered_after_wake(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: OdmrpAgent())
        net.node(2).sleep()
        agents[0].request_route(1)
        agents[0].start_periodic_refresh(1, interval=1.0)
        sim.run(until=0.5)
        assert agents[2].state_of(0, 1) is None  # slept through round 0

        net.node(2).wake()
        sim.run(until=1.6)
        st = agents[2].state_of(0, 1)
        assert st is not None and st.covered
