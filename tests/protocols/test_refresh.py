"""Tests for periodic route refresh and forwarding-group soft state."""

import numpy as np

from repro.core.mtmrp import MtmrpAgent
from repro.protocols.odmrp import OdmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import build, delivered_nodes, line_positions, run_round


class TestPeriodicRefresh:
    def test_refresh_refloods(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent())
        agents[0].request_route(1)
        agents[0].start_periodic_refresh(1, interval=1.0)
        sim.run(until=3.5)
        # initial round + refreshes at t=1, 2, 3
        assert agents[0].state_of(0, 1).seq == 3

    def test_stop_refresh(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent())
        agents[0].request_route(1)
        agents[0].start_periodic_refresh(1, interval=1.0)
        sim.run(until=1.5)
        agents[0].stop_periodic_refresh(1)
        sim.run(until=5.0)
        assert agents[0].state_of(0, 1).seq == 1

    def test_double_start_is_idempotent(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent())
        agents[0].request_route(1)
        agents[0].start_periodic_refresh(1, interval=1.0)
        agents[0].start_periodic_refresh(1, interval=0.1)  # ignored
        sim.run(until=2.5)
        assert agents[0].state_of(0, 1).seq == 2

    def test_membership_joined_late_is_picked_up(self):
        """A node that joins the group after round 0 is covered by the next
        refresh round."""
        sim, net, agents = build(line_positions(4), 25.0, receivers=[2],
                                 agent_factory=lambda: OdmrpAgent())
        agents[0].request_route(1)
        agents[0].start_periodic_refresh(1, interval=1.0)
        sim.run(until=0.5)
        net.node(3).join_group(1)  # late joiner
        sim.run(until=2.5)
        agents[0].send_data(1, 0)
        sim.run(until=3.5)
        assert delivered_nodes(sim) == {2, 3}


class TestForwardingGroupSoftState:
    def test_soft_state_bridges_refresh_gap(self):
        """With fg_timeout, a forwarder from round k still forwards data
        while round k+1's JoinReply is in flight (ODMRP mesh behaviour)."""
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent(fg_timeout=10.0))
        run_round(sim, agents)
        # wipe the hard state as a refresh would, keep only soft state
        st = agents[1].state_of(0, 1)
        st.is_forwarder = False
        agents[0].send_data(1, 1)
        sim.run(until=sim.now + 1.0)
        deliveries = [r for r in sim.trace.filter(kind=TraceKind.DELIVER)
                      if r.detail == (0, 1, 1)]
        assert len(deliveries) == 1  # soft state forwarded the packet

    def test_soft_state_expires(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: OdmrpAgent(fg_timeout=0.5))
        run_round(sim, agents)
        st = agents[1].state_of(0, 1)
        st.is_forwarder = False
        sim.run(until=sim.now + 2.0)  # timeout long past
        agents[0].send_data(1, 1)
        sim.run(until=sim.now + 1.0)
        deliveries = [r for r in sim.trace.filter(kind=TraceKind.DELIVER)
                      if r.detail == (0, 1, 1)]
        assert deliveries == []

    def test_disabled_by_default(self):
        a = OdmrpAgent()
        assert a.fg_timeout is None

    def test_mtmrp_supports_soft_state_too(self):
        sim, _net, agents = build(line_positions(3), 25.0, receivers=[2],
                                  agent_factory=lambda: MtmrpAgent(fg_timeout=5.0))
        run_round(sim, agents)
        assert agents[1]._fg_until[(0, 1)] > sim.now
