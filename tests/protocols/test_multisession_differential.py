"""Session-aware differential test matrix.

Two matrices lock the multi-session engine down:

* **Differential**: on a lossless ideal-MAC grid, N concurrent sessions
  must produce exactly the per-session delivery sets of N isolated runs.
  Receiver draws are keyed by session identity (not plan position), so
  the only thing concurrency may change is *timing* — never who gets
  data.  Any cross-session state leak in the protocol layer (shared
  dedup keys, clobbered forwarder state, RouteError bleed) breaks set
  equality here.

* **Parity**: five protocols × three traffic mixes (2/4/6 concurrent
  sessions) on the same lossless substrate.  MTMRP's aggregate data
  transmissions — seed-averaged at every session count — must not exceed
  ODMRP's (the paper's minimum-transmission claim extended to the
  multi-session regime), and every protocol holds its delivery floor.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_single
from repro.sim.trace import TraceRecorder
from repro.traffic.metrics import session_deliveries
from repro.traffic.spec import SessionSpec, ramp_plan

BASE = SimulationConfig(mac="ideal")

#: three overlapping sessions: distinct sources, staggered starts,
#: receiver overlap comes from independent 6-node draws on 100 nodes
DIFF_SPECS = (
    SessionSpec(source=0, group=2, group_size=6, start=0.0, n_packets=2),
    SessionSpec(source=55, group=3, group_size=6, start=0.3, n_packets=2),
    SessionSpec(source=99, group=4, group_size=6, start=0.6, n_packets=2),
)

DIFF_PROTOCOLS = ("mtmrp", "odmrp", "dodmrp")


def _delivery_sets(cfg, specs):
    """{flow: frozenset(receivers that delivered)} from one traced run."""
    tr = TraceRecorder()
    run_single(cfg, trace=tr, cache=False)
    return {s.flow: frozenset(session_deliveries(tr, s.flow)[0]) for s in specs}


@pytest.mark.parametrize("protocol", DIFF_PROTOCOLS)
def test_concurrent_equals_isolated_delivery_sets(protocol):
    cfg = BASE.with_(protocol=protocol, seed=11)
    concurrent = _delivery_sets(cfg.with_(sessions=DIFF_SPECS), DIFF_SPECS)
    for spec in DIFF_SPECS:
        isolated = _delivery_sets(cfg.with_(sessions=(spec,)), (spec,))
        assert concurrent[spec.flow] == isolated[spec.flow], (
            f"{protocol} session {spec.flow}: concurrent delivery set "
            f"{sorted(concurrent[spec.flow])} != isolated "
            f"{sorted(isolated[spec.flow])}"
        )
        # the matrix is vacuous if nothing is delivered
        assert len(concurrent[spec.flow]) == spec.group_size


def test_receiver_draws_identical_across_compositions():
    """The foundation: a session's receiver set is plan-independent."""
    from repro.net.network import Network
    from repro.experiments.config import make_positions
    from repro.mac.ideal import IdealMac
    from repro.sim.kernel import Simulator
    from repro.traffic.engine import install_session_members

    def draw(plan):
        sim = Simulator(seed=11)
        net = Network(
            sim,
            make_positions(BASE, sim.rng.stream("topology")),
            comm_range=BASE.comm_range,
            mac_factory=IdealMac,
            perfect_channel=True,
        )
        return install_session_members(BASE, sim, net, plan)

    full = draw(DIFF_SPECS)
    for spec in DIFF_SPECS:
        assert draw((spec,))[spec.flow] == full[spec.flow]


# --------------------------------------------------------------------- #
# parity matrix: 5 protocols x 3 traffic mixes
# --------------------------------------------------------------------- #
PARITY_PROTOCOLS = ("mtmrp", "odmrp", "dodmrp", "maodv", "gmr")
SESSION_COUNTS = (2, 4, 6)
PARITY_SEEDS = (0, 1, 2)

#: lossless ideal-MAC floors on the aggregate delivery ratio — every
#: cell is a pure function of its seed, so these are regression pins
DELIVERY_FLOORS = {
    "mtmrp": 1.0,
    "odmrp": 1.0,
    "dodmrp": 1.0,
    "maodv": 0.8,
    "gmr": 0.6,
}


@pytest.fixture(scope="module")
def parity():
    """{n_sessions: {protocol: [TrafficMetrics per seed]}}."""
    out = {}
    for n in SESSION_COUNTS:
        plan = ramp_plan(BASE, n)
        out[n] = {
            proto: [
                run_single(
                    BASE.with_(protocol=proto, seed=seed, sessions=plan),
                    cache=False,
                ).traffic
                for seed in PARITY_SEEDS
            ]
            for proto in PARITY_PROTOCOLS
        }
    return out


def test_every_parity_cell_ran(parity):
    for n, row in parity.items():
        for proto, metrics in row.items():
            assert len(metrics) == len(PARITY_SEEDS), (n, proto)
            for tm in metrics:
                assert len(tm.sessions) == n, (n, proto)
                assert tm.aggregate_data_tx > 0, (n, proto)


def test_mtmrp_aggregate_data_tx_never_exceeds_odmrp(parity):
    """Seed-averaged at every session count (individual seeds can cross:
    different trees on different deployments)."""
    for n, row in parity.items():
        mt = sum(tm.aggregate_data_tx for tm in row["mtmrp"]) / len(PARITY_SEEDS)
        od = sum(tm.aggregate_data_tx for tm in row["odmrp"]) / len(PARITY_SEEDS)
        assert mt <= od, (
            f"{n} sessions: mtmrp mean data tx {mt:.1f} > odmrp {od:.1f}"
        )


@pytest.mark.parametrize("proto", PARITY_PROTOCOLS)
def test_parity_delivery_floor(parity, proto):
    floor = DELIVERY_FLOORS[proto]
    for n, row in parity.items():
        for tm in row[proto]:
            assert tm.aggregate_delivery_ratio >= floor, (
                f"{n} sessions: {proto} delivered "
                f"{tm.aggregate_delivery_ratio:.2f} < floor {floor}"
            )


def test_sharing_grows_with_session_count(parity):
    """More concurrent trees -> more cross-session forwarder reuse for
    the mesh protocols (seed-averaged, lowest vs highest rung)."""
    for proto in ("mtmrp", "odmrp"):
        lo = sum(
            tm.shared_forwarder_ratio for tm in parity[SESSION_COUNTS[0]][proto]
        ) / len(PARITY_SEEDS)
        hi = sum(
            tm.shared_forwarder_ratio for tm in parity[SESSION_COUNTS[-1]][proto]
        ) / len(PARITY_SEEDS)
        assert hi > lo, f"{proto}: sharing ratio fell from {lo:.2f} to {hi:.2f}"


def test_lossless_runs_are_fair(parity):
    """Jain's index stays at 1.0 when every session is fully served."""
    for n, row in parity.items():
        for proto in ("mtmrp", "odmrp", "dodmrp"):
            for tm in row[proto]:
                assert tm.fairness == pytest.approx(1.0), (n, proto)
