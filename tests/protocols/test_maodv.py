"""Behavioural tests for the MAODV-style strict-tree baseline."""

import numpy as np

from repro.protocols.maodv import MaodvAgent
from repro.protocols.odmrp import OdmrpAgent
from repro.sim.trace import TraceKind
from tests.core.helpers import (
    build,
    data_tx_count,
    delivered_nodes,
    forwarders_of,
    line_positions,
    run_round,
)


def maodv():
    return lambda: MaodvAgent()


class TestTreeConstruction:
    def test_line_delivery(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=maodv())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {3}

    def test_children_recorded_along_branch(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=maodv())
        run_round(sim, agents)
        assert agents[0].children_of(0, 1) == {1}
        assert agents[1].children_of(0, 1) == {2}
        assert agents[2].children_of(0, 1) == {3}

    def test_refresh_round_resets_children(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=maodv())
        run_round(sim, agents, seq=0)
        assert agents[1].children_of(0, 1) == {2}
        run_round(sim, agents, seq=1)
        assert agents[1].children_of(0, 1) == {2}  # rebuilt, not accumulated

    def test_prune_child(self):
        sim, _net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=maodv())
        run_round(sim, agents)
        agents[1].prune_child(0, 1, 2)
        assert agents[1].children_of(0, 1) == set()


class TestStrictTreeDataPlane:
    def test_off_tree_copies_ignored(self):
        """A diamond gives every inner node two potential parents; the
        strict tree accepts data only from the chosen one."""
        pos = [[0, 0], [20, 10], [20, -10], [40, 0]]
        sim, _net, agents = build(pos, 25.0, receivers=[3], agent_factory=maodv())
        run_round(sim, agents)
        assert delivered_nodes(sim) == {3}
        # at most one of the two inner relays is on the tree
        assert len(forwarders_of(agents) & {1, 2}) == 1

    def test_broken_parent_starves_subtree(self):
        """The family's brittleness: killing the branch relay silences the
        receiver until the next GroupHello round rebuilds the tree."""
        sim, net, agents = build(line_positions(4), 25.0, receivers=[3], agent_factory=maodv())
        run_round(sim, agents)
        net.node(1).fail()
        agents[0].send_data(1, 1)
        sim.run(until=sim.now + 1.0)
        got = {
            r.node for r in sim.trace.filter(kind=TraceKind.DELIVER)
            if r.detail == (0, 1, 1)
        }
        assert got == set()

    def test_comparable_cost_to_odmrp_on_grid(self):
        """A single-source tree and the forwarding-group mesh cost about
        the same transmissions per packet; the difference is robustness."""
        from repro.net.topology import grid_topology

        def mean_cost(factory):
            vals = []
            for seed in range(6):
                rng = np.random.default_rng(seed)
                receivers = rng.choice(np.arange(1, 100), size=15, replace=False).tolist()
                sim, _net, agents = build(grid_topology(), 40.0, receivers=receivers,
                                          agent_factory=factory, seed=seed)
                run_round(sim, agents)
                assert delivered_nodes(sim) == set(receivers)
                vals.append(data_tx_count(sim))
            return float(np.mean(vals))

        maodv_cost = mean_cost(maodv())
        odmrp_cost = mean_cost(lambda: OdmrpAgent())
        assert abs(maodv_cost - odmrp_cost) <= 4.0
