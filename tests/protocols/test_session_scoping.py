"""Regression tests: per-flow scoping of protocol-agent state.

The protocol layer always kept one ``SessionState`` per ``(source,
group)``, but several side tables grew up under a single-session
assumption.  These tests pin the flow-scoped behaviour the multi-session
engine depends on: data dedup keyed by the full flow key, RouteError
dedup pruning isolated per flow, ``last_data_from`` superseded per key,
and the per-session transmit/connectivity accounting the traffic metrics
read.
"""

import pytest

from repro.core.messages import JoinReply, RouteError
from repro.net.packet import DataPacket
from repro.protocols.base import SessionState
from repro.protocols.odmrp import OdmrpAgent
from repro.sim.kernel import Simulator
from tests.conftest import make_grid_network


@pytest.fixture
def net3():
    """A tiny line network with an ODMRP agent on every node."""
    sim = Simulator(seed=7)
    net = make_grid_network(sim, nx=3, ny=1, side=60.0)
    net.bootstrap_neighbor_tables()
    agents = net.install(lambda node: OdmrpAgent())
    net.start()
    return sim, net, agents


def test_data_dedup_is_flow_scoped(net3):
    """seq 0 of flow A must not shadow seq 0 of flow B."""
    sim, net, agents = net3
    mid = agents[1]
    net.set_group_members(1, [2])
    net.set_group_members(2, [2])
    mid._recv_data(DataPacket(src=0, source=0, group=1, seq=0))
    mid._recv_data(DataPacket(src=2, source=2, group=2, seq=0))
    assert (0, 1, 0) in mid.data_seen and (2, 2, 0) in mid.data_seen
    # the duplicate of flow A is still dropped
    before = len(mid.data_seen)
    mid._recv_data(DataPacket(src=0, source=0, group=1, seq=0))
    assert len(mid.data_seen) == before


def test_last_data_from_superseded_per_flow(net3):
    sim, net, agents = net3
    mid = agents[1]
    mid._recv_data(DataPacket(src=0, source=0, group=1, seq=0))
    mid._recv_data(DataPacket(src=2, source=2, group=2, seq=0))
    assert mid.last_data_from[(0, 1)] == 0
    assert mid.last_data_from[(2, 2)] == 2
    # a newer packet of flow A supersedes only flow A's serving hop
    mid._recv_data(DataPacket(src=2, source=0, group=1, seq=1))
    assert mid.last_data_from[(0, 1)] == 2
    assert mid.last_data_from[(2, 2)] == 2


def test_route_error_dedup_pruning_is_flow_isolated(net3):
    """Pruning flow A's stale RouteError keys must keep flow B's."""
    sim, net, agents = net3
    a = agents[1]
    a._route_errors_seen.add((2, 0, 1, 0))  # flow (0, 1), round 0
    a._route_errors_seen.add((2, 5, 2, 0))  # flow (5, 2), round 0
    # flow (0, 1) rebuilds at round 5: its old keys (< seq-1) go,
    # flow (5, 2)'s survive untouched
    a._prune_route_errors(0, 1, 5)
    assert (2, 0, 1, 0) not in a._route_errors_seen
    assert (2, 5, 2, 0) in a._route_errors_seen


def test_route_error_dedup_key_includes_flow(net3):
    """The same receiver+seq on two flows are distinct dedup entries."""
    sim, net, agents = net3
    a = agents[1]
    e1 = RouteError(src=2, receiver=2, source=0, group=1, seq=0, failed_node=9)
    e2 = RouteError(src=2, receiver=2, source=5, group=2, seq=0, failed_node=9)
    a._recv_route_error(e1)
    a._recv_route_error(e2)
    assert (2, 0, 1, 0) in a._route_errors_seen
    assert (2, 5, 2, 0) in a._route_errors_seen


def test_data_tx_counted_per_session(net3):
    sim, net, agents = net3
    src0, src2 = agents[0], agents[2]
    net.set_group_members(1, [2])
    net.set_group_members(2, [0])
    src0.send_data(1, 0)
    src0.send_data(1, 1)
    src2.send_data(2, 0)
    assert src0.data_tx_by_session[(0, 1)] == 2
    assert src2.data_tx_by_session[(2, 2)] == 1
    assert (2, 2) not in src0.data_tx_by_session


def test_forwarder_tx_attributed_to_its_flow(net3):
    """A relay forwarding two flows counts each under its own key."""
    sim, net, agents = net3
    mid = agents[1]
    for source, group in ((0, 1), (2, 2)):
        st = mid.sessions.setdefault(
            (source, group),
            SessionState(
                source=source, group=group, seq=0, upstream=source, hop_count=1
            ),
        )
        st.is_forwarder = True
    mid._recv_data(DataPacket(src=0, source=0, group=1, seq=0))
    mid._recv_data(DataPacket(src=2, source=2, group=2, seq=0))
    sim.run(until=sim.now + 0.5)
    assert mid.data_tx_by_session.get((0, 1), 0) == 1
    assert mid.data_tx_by_session.get((2, 2), 0) == 1


def test_connected_receivers_tracked_per_group(net3):
    """JoinReplies land in ``connected_by_group`` under their own group."""
    sim, net, agents = net3
    src = agents[0]
    for group, receiver in ((1, 2), (2, 1)):
        src.request_route(group)
        sim.run(until=sim.now + 0.1)
        jr = JoinReply(
            src=receiver, nexthop=0, receiver=receiver,
            source=0, group=group, seq=src.sessions[(0, group)].seq,
        )
        src._recv_join_reply(jr)
    assert src.connected_by_group[1] == {2}
    assert src.connected_by_group[2] == {1}
    # the legacy aggregate view is the union (pinned by older tests)
    assert src.connected_receivers == {1, 2}


def test_per_flow_seq_numbers_are_independent(net3):
    sim, net, agents = net3
    src = agents[0]
    src.request_route(1)
    src.request_route(1)
    src.request_route(2)
    assert src.sessions[(0, 1)].seq == 1
    assert src.sessions[(0, 2)].seq == 0
