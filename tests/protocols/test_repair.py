"""Tests for the self-healing route maintenance layer.

Hand-built deployments (ideal MAC, perfect channel) drive the graft
machine through its whole state diagram: local repair success, fallback
to the RouteError flood, budget exhaustion into DEGRADED, scoped-flood
delivery while degraded, and recovery on the next JoinQuery round.
"""

import pytest

from repro.core.messages import RepairQuery
from repro.net.packet import ScopedFloodData
from repro.protocols.odmrp import OdmrpAgent
from repro.protocols.repair import RepairPolicy, RouteState
from repro.sim.trace import TraceKind
from tests.core.helpers import build, line_positions, run_round


def repair_agent(policy):
    def factory():
        a = OdmrpAgent()
        a.repair_policy = policy
        return a

    return factory


#: source 0 fans out to relays 1 (upper) and 2 (lower); receiver 3 is
#: reachable through either — the redundancy a graft needs
DIAMOND = [[0.0, 0.0], [18.0, 12.0], [18.0, -12.0], [36.0, 0.0]]


def fail_serving_relay(net, agents, receiver=3, source=0, group=1):
    """Kill the receiver's serving forwarder and expire its table entry."""
    serving = agents[receiver].last_data_from[(source, group)]
    net.node(serving).fail()
    # unit tests bootstrap neighbor tables instead of running HELLO, so
    # expire the dead relay's entry by hand (the watchdog's trigger)
    agents[receiver].node.neighbor_table.remove(serving)
    return serving


class TestPolicy:
    def test_roundtrip(self):
        p = RepairPolicy(repair_ttl=3, route_error_budget=1)
        assert RepairPolicy.from_dict(p.to_dict()) == p

    def test_default_off(self):
        a = OdmrpAgent()
        assert a.repair_policy is None
        assert a.route_state(0, 1) is RouteState.HEALTHY


class TestGraftSuccess:
    def test_local_repair_heals_without_route_error(self):
        policy = RepairPolicy()
        sim, net, agents = build(DIAMOND, 25.0, receivers=[3],
                                 agent_factory=repair_agent(policy))
        run_round(sim, agents)
        serving = fail_serving_relay(net, agents)
        assert agents[3].check_route_health(0, 1) is False
        sim.run(until=sim.now + 2.0)

        assert agents[3].route_state(0, 1) is RouteState.HEALTHY
        assert agents[3].stats["grafts_ok"] == 1
        assert sim.trace.counts[(TraceKind.NOTE, "GraftOk")] == 1
        # the graft's whole point: no network-wide flood, no rebuild
        assert sim.trace.counts[(TraceKind.TX, "RouteError")] == 0
        new_parent = agents[3].state_of(0, 1).upstream
        assert new_parent != serving and net.node(new_parent).alive

        # data flows again over the grafted branch
        agents[0].send_data(1, seq=1)
        sim.run(until=sim.now + 1.0)
        assert (0, 1, 1) in agents[3].delivered

    def test_graft_marks_session_grafted(self):
        policy = RepairPolicy()
        sim, net, agents = build(DIAMOND, 25.0, receivers=[3],
                                 agent_factory=repair_agent(policy))
        run_round(sim, agents)
        fail_serving_relay(net, agents)
        agents[3].check_route_health(0, 1)
        sim.run(until=sim.now + 2.0)
        assert agents[3].state_of(0, 1).grafted


class TestGraftFailure:
    def test_no_donor_falls_back_to_route_error(self):
        # a line has no redundant branch: the graft must fail and the
        # legacy RouteError flood must still go out (bounded by budget)
        policy = RepairPolicy(max_graft_attempts=1, graft_timeout=0.05)
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=repair_agent(policy))
        run_round(sim, agents)
        net.node(1).fail()
        agents[2].node.neighbor_table.remove(1)
        agents[2].check_route_health(0, 1)
        sim.run(until=sim.now + 2.0)

        assert agents[2].stats["grafts_failed"] == 1
        assert sim.trace.counts[(TraceKind.NOTE, "GraftFail")] == 1
        assert sim.trace.counts[(TraceKind.TX, "RouteError")] >= 1
        # budget not exhausted yet: still trying, not degraded
        assert agents[2].route_state(0, 1) is RouteState.REPAIRING

    def test_budget_exhaustion_degrades(self):
        policy = RepairPolicy(
            max_graft_attempts=1, graft_timeout=0.05, route_error_budget=1
        )
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=repair_agent(policy))
        run_round(sim, agents)
        net.node(1).fail()
        agents[2].node.neighbor_table.remove(1)
        for _ in range(3):  # watchdog re-enters after each failed episode
            agents[2].check_route_health(0, 1)
            sim.run(until=sim.now + 1.0)

        assert agents[2].route_state(0, 1) is RouteState.DEGRADED
        assert agents[2].stats["route_errors_suppressed"] >= 1
        # the budget capped the flood: one RouteError origin burst only
        assert agents[2].stats["route_errors_sent"] == 1
        states = [
            rec.detail[0]
            for rec in sim.trace.filter(kind=TraceKind.NOTE, packet_type="RouteState")
            if rec.node == 2
        ]
        assert states[-1] == "degraded"

    def test_degraded_receiver_stays_quiescent(self):
        policy = RepairPolicy(
            max_graft_attempts=1, graft_timeout=0.05, route_error_budget=0
        )
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=repair_agent(policy))
        run_round(sim, agents)
        net.node(1).fail()
        agents[2].node.neighbor_table.remove(1)
        agents[2].check_route_health(0, 1)
        sim.run(until=sim.now + 1.0)
        assert agents[2].route_state(0, 1) is RouteState.DEGRADED
        sent_before = agents[2].stats["repair_queries_sent"]
        agents[2].check_route_health(0, 1)  # watchdog keeps ticking
        sim.run(until=sim.now + 1.0)
        assert agents[2].stats["repair_queries_sent"] == sent_before


class TestDegradedDelivery:
    def _degraded_source(self, n=4, degraded_ttl=4):
        policy = RepairPolicy(degraded_ttl=degraded_ttl)
        sim, net, agents = build(line_positions(n), 25.0, receivers=[n - 1],
                                 agent_factory=repair_agent(policy))
        run_round(sim, agents)
        rs = agents[0]._repair_session((0, 1))
        agents[0]._set_route_state((0, 1), rs, RouteState.DEGRADED, "test")
        return sim, net, agents

    def test_source_floods_scoped_data_when_degraded(self):
        sim, net, agents = self._degraded_source()
        agents[0].send_data(1, seq=7)
        sim.run(until=sim.now + 1.0)
        assert sim.trace.counts[(TraceKind.TX, "ScopedFloodData")] >= 1
        assert (0, 1, 7) in agents[3].delivered
        assert agents[0].stats["degraded_data"] == 1

    def test_scoped_flood_ttl_is_bounded(self):
        # ttl=1 covers two hops (source tx + one forward): the receiver
        # three hops out must stay dark, and every recorded outgoing ttl
        # must sit strictly below the policy's budget
        sim, net, agents = self._degraded_source(degraded_ttl=1)
        agents[0].send_data(1, seq=7)
        sim.run(until=sim.now + 1.0)
        ttls = [
            rec.detail[0]
            for rec in sim.trace.filter(kind=TraceKind.NOTE, packet_type="DegradedForward")
        ]
        assert ttls and all(0 <= t < 1 for t in ttls)
        assert (0, 1, 7) not in agents[3].delivered

    def test_scoped_flood_does_not_become_a_route(self):
        sim, net, agents = self._degraded_source()
        before = dict(agents[3].last_data_from)
        agents[0].send_data(1, seq=7)
        sim.run(until=sim.now + 1.0)
        assert agents[3].last_data_from == before


class TestRoundReset:
    def test_new_join_round_recovers_degraded_session(self):
        policy = RepairPolicy(
            max_graft_attempts=1, graft_timeout=0.05, route_error_budget=0
        )
        sim, net, agents = build(DIAMOND, 25.0, receivers=[3],
                                 agent_factory=repair_agent(policy))
        run_round(sim, agents)
        rs = agents[3]._repair_session((0, 1))
        agents[3]._set_route_state((0, 1), rs, RouteState.DEGRADED, "test")
        agents[0].request_route(1)  # fresh round floods a higher seq
        sim.run(until=sim.now + 2.0)
        assert agents[3].route_state(0, 1) is RouteState.HEALTHY
        assert not agents[3]._repair[(0, 1)].active

    def test_stale_graft_timer_is_ignored_after_reset(self):
        policy = RepairPolicy(graft_timeout=5.0)  # timer outlives the reset
        sim, net, agents = build(DIAMOND, 25.0, receivers=[3],
                                 agent_factory=repair_agent(policy))
        run_round(sim, agents)
        fail_serving_relay(net, agents)
        agents[3].check_route_health(0, 1)
        agents[0].request_route(1)
        sim.run(until=sim.now + 8.0)  # long enough for the stale timer
        assert agents[3].route_state(0, 1) is RouteState.HEALTHY
        assert agents[3].stats["grafts_failed"] == 0


class TestZeroCostWhenOff:
    def test_repair_query_ignored_without_policy(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: OdmrpAgent())
        run_round(sim, agents)
        rq = RepairQuery(src=2, origin=2, source=0, group=1, seq=0, ttl=2)
        agents[1].on_packet(rq)
        sim.run(until=sim.now + 1.0)
        assert sim.trace.counts[(TraceKind.TX, "RepairQuery")] == 0
        assert sim.trace.counts[(TraceKind.TX, "RepairReply")] == 0

    def test_no_repair_state_allocated_flag_off(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: OdmrpAgent())
        run_round(sim, agents)
        assert all(not a._repair for a in agents)
        assert sim.trace.counts[(TraceKind.NOTE, "RouteState")] == 0


class TestRouteErrorPruning:
    """Satellite: ``_route_errors_seen`` must not grow without bound."""

    def test_dedup_set_bounded_across_rounds(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: OdmrpAgent())
        relay = agents[1]
        for seq in range(10):
            run_round(sim, agents, seq=seq)
            agents[2].report_route_failure(0, 1)
            sim.run(until=sim.now + 1.0)
        # the relay saw one RouteError per round; pruning on each accepted
        # JoinQuery keeps only the current and previous rounds' entries
        assert len(relay._route_errors_seen) <= 4
        seqs = {e[3] for e in relay._route_errors_seen}
        assert all(s >= 8 for s in seqs)

    def test_source_prunes_on_request_route(self):
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: OdmrpAgent())
        for seq in range(6):
            run_round(sim, agents, seq=seq)
            agents[2].report_route_failure(0, 1)
            sim.run(until=sim.now + 1.0)
        assert len(agents[0]._route_errors_seen) <= 4

    def test_previous_round_entry_still_deduped(self):
        """Late duplicate copies of last round's RouteError stay silenced."""
        sim, net, agents = build(line_positions(3), 25.0, receivers=[2],
                                 agent_factory=lambda: OdmrpAgent())
        run_round(sim, agents, seq=0)
        agents[2].report_route_failure(0, 1)
        # the RouteError itself triggers the seq-1 rebuild round; the
        # relay must keep the seq-0 dedup entry through it (in-flight
        # duplicates of the triggering flood can still arrive)
        sim.run(until=sim.now + 2.0)
        assert agents[0].sessions[(0, 1)].seq == 1
        assert any(e[3] == 0 for e in agents[1]._route_errors_seen)
