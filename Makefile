# Convenience targets for the MTMRP reproduction.

PY ?= python

.PHONY: install test bench bench-micro figures figures-full examples clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

# regenerate the committed perf baseline (BENCH_core.json) and append
# the run to the cross-PR trend file (BENCH_history.jsonl)
bench:
	PYTHONPATH=src $(PY) -m repro.experiments bench \
		--bench-out BENCH_core.json --bench-history BENCH_history.jsonl

bench-micro:
	$(PY) -m pytest benchmarks/ --benchmark-only

# reduced regeneration of every paper figure (minutes)
figures:
	$(PY) -m repro.experiments fig5 --runs 30 --svg-dir results/svg
	$(PY) -m repro.experiments fig6 --runs 30 --svg-dir results/svg
	$(PY) -m repro.experiments fig7 --runs 15 --svg-dir results/svg
	$(PY) -m repro.experiments fig8 --runs 15 --svg-dir results/svg
	$(PY) -m repro.experiments fig9 --svg-dir results/svg
	$(PY) -m repro.experiments fig10 --svg-dir results/svg

# the paper's full 100-round averaging (long)
figures-full:
	$(PY) -m repro.experiments fig5 --runs 100
	$(PY) -m repro.experiments fig6 --runs 100
	$(PY) -m repro.experiments fig7 --runs 30
	$(PY) -m repro.experiments fig8 --runs 30

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PY) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
