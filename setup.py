"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments lacking the ``wheel``
package (pip then uses the legacy ``setup.py develop`` editable path).
"""

from setuptools import setup

setup()
